#include "dist/lease_coordinator.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "dist/shard_plan.hpp"
#include "dist/shard_runner.hpp"
#include "exec/jit_cache.hpp"
#include "flow/report.hpp"
#include "support/diagnostics.hpp"
#include "support/kv_format.hpp"

namespace slpwlo::dist {

namespace fs = std::filesystem;

namespace {

long long now_ms() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

std::string read_text(const fs::path& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read `" + path.string() + "`");
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

void write_text(const fs::path& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
    out.flush();
    if (!out.good()) throw Error("cannot write `" + path.string() + "`");
}

/// Publish atomically: readers never observe a half-written file. The
// `.tmp.<pid>.<seq>` suffix keeps concurrent publishers off each other's
// temp files and marks orphans from SIGKILLed workers for the age-based
// sweep (exec::jit_cleanup_stale matches the `.tmp.` infix).
void publish_text(const fs::path& path, const std::string& text) {
    static std::atomic<unsigned long long> seq{0};
    const fs::path tmp = path.string() + ".tmp." + std::to_string(getpid()) +
                         "." + std::to_string(seq.fetch_add(1));
    write_text(tmp, text);
    fs::rename(tmp, path);
}

/// Orphaned-temp sweep age: at least one ttl (nobody legitimately holds a
/// half-written file that long), floored so a zero-ttl test directory
/// cannot race a live writer.
long long stale_tmp_age_ms(long long ttl_ms) {
    return std::max(ttl_ms, 1000ll);
}

struct LeaseConfig {
    size_t chunks = 0;
    size_t total_slots = 0;
    uint64_t grid_fp = 0;
    long long ttl_ms = 0;
};

std::string lease_config_text(const LeaseConfig& config) {
    std::ostringstream os;
    os << "# slpwlo lease directory\n"
       << "lease_version = 1\n"
       << "chunks = " << config.chunks << "\n"
       << "total_slots = " << config.total_slots << "\n"
       << "grid_fingerprint = " << fingerprint_hex(config.grid_fp) << "\n"
       << "ttl_ms = " << config.ttl_ms << "\n";
    return os.str();
}

LeaseConfig parse_lease_config(const std::string& text,
                               const std::string& source) {
    LeaseConfig config;
    bool saw_version = false;
    kv::KvReader reader(text, source);
    kv::KvLine line;
    std::set<std::string> seen;
    while (reader.next(line)) {
        if (line.key.empty()) {
            reader.fail_here("expected `key = value`, got `" + line.value +
                             "`");
        }
        if (!seen.insert(line.key).second) {
            reader.fail_here("duplicate key `" + line.key + "`");
        }
        if (line.key == "lease_version") {
            const int version =
                kv::to_int(source, line.line, line.key, line.value);
            if (version != 1) {
                reader.fail_here("unsupported lease_version " + line.value +
                                 " (this reader knows 1)");
            }
            saw_version = true;
        } else if (line.key == "chunks") {
            config.chunks = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "total_slots") {
            config.total_slots = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "grid_fingerprint") {
            config.grid_fp =
                kv::to_fingerprint(source, line.line, line.key, line.value);
        } else if (line.key == "ttl_ms") {
            config.ttl_ms = kv::to_ll(source, line.line, line.key, line.value);
        } else {
            reader.fail_here("unknown key `" + line.key + "`");
        }
    }
    if (!saw_version) throw Error(source + ": missing lease_version");
    return config;
}

std::string chunk_text(size_t index, size_t count,
                       const std::vector<size_t>& slots) {
    std::ostringstream os;
    os << "# slpwlo lease chunk\n"
       << "chunk_index = " << index << "\n"
       << "chunk_count = " << count << "\n"
       << "slots =";
    for (const size_t slot : slots) os << " " << slot;
    os << "\n";
    return os.str();
}

std::vector<size_t> parse_chunk_slots(const std::string& text,
                                      const std::string& source,
                                      size_t expected_index) {
    std::vector<size_t> slots;
    bool saw_index = false;
    kv::KvReader reader(text, source);
    kv::KvLine line;
    while (reader.next(line)) {
        if (line.key == "chunk_index") {
            const long long index =
                kv::to_ll(source, line.line, line.key, line.value);
            if (index < 0 || static_cast<size_t>(index) != expected_index) {
                reader.fail_here("chunk_index does not match the filename");
            }
            saw_index = true;
        } else if (line.key == "chunk_count") {
            // Informational; the config's count is authoritative.
        } else if (line.key == "slots") {
            for (const int slot :
                 kv::to_int_list(source, line.line, line.key, line.value)) {
                if (slot < 0) reader.fail_here("negative slot");
                slots.push_back(static_cast<size_t>(slot));
            }
        } else {
            reader.fail_here("unknown key `" + line.key + "`");
        }
    }
    if (!saw_index) throw Error(source + ": missing chunk_index");
    if (slots.empty()) throw Error(source + ": chunk has no slots");
    for (size_t i = 1; i < slots.size(); ++i) {
        if (slots[i] <= slots[i - 1]) {
            throw Error(source + ": slots must be strictly ascending");
        }
    }
    return slots;
}

struct Claim {
    std::string worker;
    std::string nonce;
    long long deadline_ms = 0;
};

std::string claim_text(const Claim& claim) {
    std::ostringstream os;
    os << "# slpwlo lease claim\n"
       << "worker = " << claim.worker << "\n"
       << "nonce = " << claim.nonce << "\n"
       << "deadline_ms = " << claim.deadline_ms << "\n";
    return os.str();
}

/// Parse a claim; nullopt when the file is missing or unreadable (a
/// claimer that died between mkdir and write, or a steal racing us).
std::optional<Claim> try_read_claim(const fs::path& lease_dir) {
    std::ifstream in(lease_dir / "claim");
    if (!in) return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    Claim claim;
    kv::KvReader reader(text.str(), (lease_dir / "claim").string());
    kv::KvLine line;
    while (reader.next(line)) {
        if (line.key == "worker") {
            claim.worker = line.value;
        } else if (line.key == "nonce") {
            claim.nonce = line.value;
        } else if (line.key == "deadline_ms") {
            claim.deadline_ms =
                kv::to_ll(reader.source(), line.line, line.key, line.value);
        }
    }
    if (claim.nonce.empty()) return std::nullopt;
    return claim;
}

void check_worker_id(const std::string& id) {
    SLPWLO_CHECK(!id.empty(), "worker id cannot be empty");
    for (const char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_';
        SLPWLO_CHECK(ok, "worker id `" + id +
                             "` may only contain letters, digits, `-`, `_` "
                             "(it lands in lease filenames)");
    }
}

/// Chunk index from a `<i>.<rest>` filename, or nullopt for foreign files.
std::optional<size_t> chunk_of_filename(const std::string& name) {
    const size_t dot = name.find('.');
    if (dot == std::string::npos || dot == 0) return std::nullopt;
    size_t index = 0;
    for (size_t i = 0; i < dot; ++i) {
        if (name[i] < '0' || name[i] > '9') return std::nullopt;
        index = index * 10 + static_cast<size_t>(name[i] - '0');
    }
    return index;
}

std::set<size_t> chunks_with_results(const fs::path& dir) {
    std::set<size_t> done;
    for (const auto& entry : fs::directory_iterator(dir / "results")) {
        const std::string name = entry.path().filename().string();
        if (name.size() < 5 || name.substr(name.size() - 5) != ".rows") {
            continue;
        }
        if (const auto chunk = chunk_of_filename(name)) done.insert(*chunk);
    }
    return done;
}

/// Chunk ids present in `chunks/` — discovered by listing, never taken
/// from the config: workers splitting an oversized chunk (acquire's
/// `max_slots`) publish brand-new chunk files after init, so the
/// config's count is only the initial floor. Half-published temp files
/// (`.chunk.tmp.<pid>.<seq>`) fail the suffix test and are skipped.
std::set<size_t> list_chunks(const fs::path& dir) {
    std::set<size_t> chunks;
    for (const auto& entry : fs::directory_iterator(dir / "chunks")) {
        const std::string name = entry.path().filename().string();
        if (name.size() < 6 || name.substr(name.size() - 6) != ".chunk") {
            continue;
        }
        if (const auto chunk = chunk_of_filename(name)) chunks.insert(*chunk);
    }
    return chunks;
}

}  // namespace

// --- coordinator side ----------------------------------------------------------

size_t init_lease_dir(const std::string& dir, const ShardManifest& manifest,
                      const LeaseOptions& options) {
    SLPWLO_CHECK(!manifest.points.empty(), "cannot serve an empty grid");
    SLPWLO_CHECK(manifest.slots.size() == manifest.total_slots,
                 "lease serving needs a whole-grid manifest covering every "
                 "slot (generate one with `plan --shards 1`)");
    SLPWLO_CHECK(options.ttl_ms >= 0, "lease ttl must be non-negative");
    for (const SweepPoint& point : manifest.points) {
        SLPWLO_CHECK(point.target_model.has_value(),
                     "lease manifests must embed target models");
    }

    const fs::path root(dir);
    fs::create_directories(root);
    if (fs::exists(root / "config")) {
        throw Error("lease directory `" + dir + "` is already initialized");
    }
    fs::create_directories(root / "chunks");
    fs::create_directories(root / "leases");
    fs::create_directories(root / "results");
    fs::create_directories(root / "expired");
    // Shared compiled-kernel cache: workers running --evaluator=compiled
    // point their jit cache here, so the farm compiles each kernel once.
    fs::create_directories(root / "jit");

    // Re-serialize through the plan writer so the stored manifest keeps
    // the bit-exact round-trip guarantee (fingerprints and all).
    ShardPlan plan;
    plan.shard_index = manifest.shard_index;
    plan.shard_count = manifest.shard_count;
    plan.strategy = manifest.strategy;
    plan.total_slots = manifest.total_slots;
    plan.grid_fp = manifest.grid_fp;
    plan.slots = manifest.slots;
    plan.points = manifest.points;
    write_text(root / "manifest", shard_manifest_text(plan, manifest.defaults));

    // Cost-balanced greedy chunking in slot order (chunk_grid_slots —
    // the exact cutter the farm daemon uses, so a lease directory and a
    // farm job chop the same grid into the same chunks). Deterministic;
    // re-serving the same manifest and options always yields the same
    // chunks. Measured costs (when provided) replace the heuristic slot
    // for slot — the re-serve path sizes chunks from what the previous
    // run actually took.
    if (!options.measured_costs.empty()) {
        SLPWLO_CHECK(options.measured_costs.size() == manifest.points.size(),
                     "measured chunk costs need one entry per grid slot (" +
                         std::to_string(options.measured_costs.size()) +
                         " costs, " + std::to_string(manifest.points.size()) +
                         " slots)");
    }
    ChunkOptions chunking;
    chunking.chunk_cost = options.chunk_cost;
    chunking.max_chunk_slots = options.max_chunk_slots;
    chunking.measured_costs = options.measured_costs;
    const std::vector<std::vector<size_t>> chunks =
        chunk_grid_slots(manifest.points, manifest.slots, chunking);

    for (size_t i = 0; i < chunks.size(); ++i) {
        write_text(root / "chunks" / (std::to_string(i) + ".chunk"),
                   chunk_text(i, chunks.size(), chunks[i]));
    }

    // The config is written last: its presence marks the directory ready
    // (workers started early poll until it appears... they fail fast
    // today; see LeaseWorkSource ctor).
    LeaseConfig config;
    config.chunks = chunks.size();
    config.total_slots = manifest.total_slots;
    config.grid_fp = manifest.grid_fp;
    config.ttl_ms = options.ttl_ms;
    publish_text(root / "config", lease_config_text(config));
    return chunks.size();
}

LeaseDirStatus lease_dir_status(const std::string& dir) {
    const fs::path root(dir);
    // Parsed only to verify the directory is initialized — the live
    // chunk count comes from listing chunks/, which grows when workers
    // split oversized chunks.
    parse_lease_config(read_text(root / "config"),
                       (root / "config").string());
    LeaseDirStatus status;
    status.chunks = list_chunks(root).size();
    status.completed = chunks_with_results(root).size();
    for (const auto& entry : fs::directory_iterator(root / "leases")) {
        if (entry.is_directory()) status.claimed++;
    }
    std::set<size_t> reissued;
    for (const auto& entry : fs::directory_iterator(root / "expired")) {
        const std::string name = entry.path().filename().string();
        // `.done` entries are retired post-completion claims
        // (cleanup_stale_claim), not re-issues of live work.
        if (name.size() >= 5 && name.substr(name.size() - 5) == ".done") {
            continue;
        }
        if (const auto chunk = chunk_of_filename(name)) reissued.insert(*chunk);
    }
    status.reissued = reissued.size();
    return status;
}

std::string collect_lease_results(const std::string& dir) {
    const fs::path root(dir);
    const LeaseConfig config =
        parse_lease_config(read_text(root / "config"),
                           (root / "config").string());

    // Housekeeping for SIGKILLed workers: their half-written publishes
    // (`.tmp.<pid>.<seq>`) never match the `.rows` filter below, but they
    // would otherwise accumulate forever.
    const long long age = stale_tmp_age_ms(config.ttl_ms);
    exec::jit_cleanup_stale((root / "results").string(), age);
    exec::jit_cleanup_stale((root / "jit").string(), age);

    std::map<size_t, std::vector<fs::path>> by_chunk;
    for (const auto& entry : fs::directory_iterator(root / "results")) {
        const std::string name = entry.path().filename().string();
        if (name.size() < 5 || name.substr(name.size() - 5) != ".rows") {
            continue;
        }
        if (const auto chunk = chunk_of_filename(name)) {
            by_chunk[*chunk].push_back(entry.path());
        }
    }

    // Completeness is judged against the chunks that exist now — splits
    // grow the set past the config's initial count, and every split-off
    // chunk must publish its own results before the merge is whole.
    const std::set<size_t> chunks = list_chunks(root);
    std::string missing;
    int listed = 0;
    for (const size_t chunk : chunks) {
        if (by_chunk.count(chunk) != 0) continue;
        if (listed < 8) {
            if (!missing.empty()) missing += ", ";
            missing += std::to_string(chunk);
        }
        listed++;
    }
    if (listed != 0) {
        throw Error("lease directory `" + dir + "`: " +
                    std::to_string(listed) + " of " +
                    std::to_string(chunks.size()) +
                    " chunks have no published results yet (first: " +
                    missing + ")");
    }

    std::vector<ShardResultsFile> files;
    for (auto& [chunk, paths] : by_chunk) {
        (void)chunk;
        // Deterministic load order (directory iteration is not).
        std::sort(paths.begin(), paths.end());
        for (const fs::path& path : paths) {
            files.push_back(load_shard_results(path.string()));
        }
    }
    // Re-issued leases publish byte-identical duplicates (micros aside);
    // anything else is still a hard conflict.
    return merge_shard_results(files, DuplicatePolicy::AllowIdentical);
}

// --- worker side ---------------------------------------------------------------

struct LeaseWorkSource::Impl {
    fs::path root;
    LeaseWorkerOptions options;
    LeaseConfig config;
    ShardManifest manifest;
    std::set<size_t> done;        ///< chunks observed completed (monotonic)
    std::map<size_t, long long> claim_missing_since;  ///< see try_steal
    std::map<uint64_t, std::string> held;  ///< lease id -> claim nonce
    size_t seq = 0;
    size_t steals = 0;

    std::string next_nonce() {
        return options.worker_id + "." + std::to_string(seq++);
    }

    fs::path lease_path(size_t chunk) const {
        return root / "leases" / (std::to_string(chunk) + ".lease");
    }

    /// One results/ listing refreshes the (monotonic) done set for a
    /// whole acquire pass — never one listing per chunk. `total_chunks`
    /// is the pass's discovered chunk count (splits grow it past the
    /// config), used only to skip the listing once everything is done.
    void refresh_done(size_t total_chunks) {
        if (done.size() >= total_chunks) return;
        for (const size_t chunk : chunks_with_results(root)) {
            done.insert(chunk);
        }
    }

    /// A completed chunk whose claim outlived its owner (killed after
    /// publishing, or a straggler past its deadline) is never re-claimed,
    /// so nobody would ever steal the stale directory away — retire it
    /// once expired, or lease_dir_status would report an in-flight lease
    /// on a finished farm forever. Retirement is rename-first, exactly
    /// like try_steal: a plain read-check-remove could race a stealer
    /// whose done set predates the results file and delete its freshly
    /// re-created claim. The `.done` graveyard name keeps these out of
    /// the re-issue audit count.
    void cleanup_stale_claim(size_t chunk) {
        if (held.count(chunk) != 0) return;  // ours and live: release()'s job
        const fs::path path = lease_path(chunk);
        const auto claim = try_read_claim(path);
        if (!claim.has_value()) return;
        if (now_ms() <= claim->deadline_ms) return;  // owner may still act
        std::error_code ec;
        const fs::path grave =
            root / "expired" /
            (std::to_string(chunk) + "." + next_nonce() + ".done");
        fs::rename(path, grave, ec);
        if (ec) return;  // a racing rename won; nothing left to retire
        fs::remove_all(grave, ec);
    }

    /// Steal an expired (or claim-less past ttl) lease. True when the
    /// lease directory is gone afterwards (by us or a racing stealer).
    bool try_steal(size_t chunk) {
        const fs::path path = lease_path(chunk);
        const auto claim = try_read_claim(path);
        const long long now = now_ms();
        if (claim.has_value()) {
            claim_missing_since.erase(chunk);
            if (now <= claim->deadline_ms) return false;  // live
        } else {
            // A claim directory with no claim file: its owner died between
            // mkdir and write (or a steal is racing us). Wait a full ttl
            // from first sighting before declaring it dead — wall clocks
            // aside, nobody legitimately holds a bare directory that long.
            const auto [it, inserted] =
                claim_missing_since.emplace(chunk, now);
            if (now - it->second <= config.ttl_ms) return false;
        }
        claim_missing_since.erase(chunk);
        std::error_code ec;
        fs::rename(path,
                   root / "expired" /
                       (std::to_string(chunk) + "." + next_nonce()),
                   ec);
        if (ec) return !fs::exists(path);  // a racing stealer beat us
        steals++;
        return true;
    }

    /// mkdir-claim `chunk`; on success records the claim and returns true.
    bool try_claim(size_t chunk) {
        const fs::path path = lease_path(chunk);
        std::error_code ec;
        if (!fs::create_directory(path, ec) || ec) {
            if (!try_steal(chunk)) return false;
            ec.clear();
            if (!fs::create_directory(path, ec) || ec) return false;
        }
        Claim claim;
        claim.worker = options.worker_id;
        claim.nonce = next_nonce();
        claim.deadline_ms = now_ms() + config.ttl_ms;
        // tmp + rename: a racing reader must never parse a half-written
        // claim (a truncated deadline reads as 0 — instantly stealable).
        publish_text(path / "claim", claim_text(claim));
        held[chunk] = claim.nonce;
        return true;
    }

    /// Remove our own claim — never a stolen-and-reclaimed one. Only
    /// attempted while our deadline has not passed: past it, a stealer
    /// may own the path again, and the merge's duplicate resolution is
    /// cheaper than any read-check-remove race here.
    void release(size_t chunk) {
        const auto it = held.find(chunk);
        if (it == held.end()) return;
        const std::string nonce = it->second;
        held.erase(it);
        const fs::path path = lease_path(chunk);
        const auto claim = try_read_claim(path);
        if (!claim.has_value() || claim->nonce != nonce) return;  // stolen
        if (now_ms() > claim->deadline_ms) return;  // stealable — leave it
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    /// Re-chop an oversized chunk we hold the claim on: keep the first
    /// `max_slots` slots in `lease`, publish the remainder as a brand-new
    /// claimable chunk. Ordering is the crash-safety argument — the tail
    /// chunk file is published BEFORE the head chunk shrinks, so dying
    /// in between duplicates the tail (the old full chunk and the new
    /// tail chunk both eventually run, and the merge's AllowIdentical
    /// policy absorbs the byte-identical rows) rather than losing it.
    ///
    /// The fresh id is reserved with the same mkdir primitive try_claim
    /// uses, on the id's lease directory, so two concurrent splitters can
    /// never pick the same id. mkdir alone is not enough: a completed
    /// split-off chunk releases its lease directory, so a stale-watermark
    /// reserver could mkdir an id that already names a real chunk — the
    /// exists() check after a successful mkdir closes that (while we hold
    /// leases/<id>.lease, nobody else can create chunks/<id>.chunk).
    void split(size_t chunk, Lease& lease, size_t max_slots) {
        const std::vector<size_t> head(lease.slots.begin(),
                                       lease.slots.begin() +
                                           static_cast<long>(max_slots));
        const std::vector<size_t> tail(lease.slots.begin() +
                                           static_cast<long>(max_slots),
                                       lease.slots.end());

        size_t fresh = chunk + 1;
        for (const size_t known : list_chunks(root)) {
            fresh = std::max(fresh, known + 1);
        }
        for (;;) {
            std::error_code ec;
            if (fs::create_directory(lease_path(fresh), ec) && !ec) {
                if (!fs::exists(root / "chunks" /
                                (std::to_string(fresh) + ".chunk"))) {
                    break;
                }
                fs::remove_all(lease_path(fresh), ec);
            }
            ++fresh;
        }
        Claim claim;
        claim.worker = options.worker_id;
        claim.nonce = next_nonce();
        claim.deadline_ms = now_ms() + config.ttl_ms;
        publish_text(lease_path(fresh) / "claim", claim_text(claim));
        held[fresh] = claim.nonce;

        // chunk_count is informational (parse ignores it); the fresh id
        // is the best watermark either file can state.
        publish_text(root / "chunks" / (std::to_string(fresh) + ".chunk"),
                     chunk_text(fresh, fresh + 1, tail));
        publish_text(root / "chunks" / (std::to_string(chunk) + ".chunk"),
                     chunk_text(chunk, fresh + 1, head));
        release(fresh);  // the tail is on disk — let anyone claim it

        lease.slots = head;
        lease.points.resize(head.size());
    }

    Lease lease_for(size_t chunk) {
        const std::vector<size_t> slots = parse_chunk_slots(
            read_text(root / "chunks" / (std::to_string(chunk) + ".chunk")),
            (root / "chunks" / (std::to_string(chunk) + ".chunk")).string(),
            chunk);
        Lease lease;
        lease.id = chunk;
        lease.slots = slots;
        lease.points.reserve(slots.size());
        for (const size_t slot : slots) {
            SLPWLO_CHECK(slot < manifest.points.size(),
                         "chunk slot out of manifest range");
            // Whole-grid manifests are slot-complete and ascending, so
            // slot i sits at position i (checked in the constructor).
            lease.points.push_back(manifest.points[slot]);
        }
        return lease;
    }
};

LeaseWorkSource::LeaseWorkSource(std::string dir, LeaseWorkerOptions options)
    : impl_(std::make_unique<Impl>()) {
    impl_->root = fs::path(std::move(dir));
    if (options.worker_id.empty()) {
        options.worker_id = "w" + std::to_string(getpid());
    }
    check_worker_id(options.worker_id);
    SLPWLO_CHECK(options.poll_ms > 0, "poll_ms must be positive");
    impl_->options = std::move(options);
    impl_->config = parse_lease_config(
        read_text(impl_->root / "config"),
        (impl_->root / "config").string());
    impl_->manifest = load_shard_manifest((impl_->root / "manifest").string());
    SLPWLO_CHECK(impl_->manifest.grid_fp == impl_->config.grid_fp,
                 "lease directory manifest/config grid fingerprints disagree");
    SLPWLO_CHECK(
        impl_->manifest.slots.size() == impl_->manifest.total_slots,
        "lease directory manifest does not cover the whole grid");
    for (size_t i = 0; i < impl_->manifest.slots.size(); ++i) {
        SLPWLO_CHECK(impl_->manifest.slots[i] == i,
                     "whole-grid manifest slots must be 0..n-1");
    }
    // Share one compiled-kernel cache across the farm ($SLPWLO_JIT_DIR
    // still wins when the user pinned one), and sweep temp orphans a
    // SIGKILLed predecessor may have left in it or in results/.
    exec::set_jit_cache_directory((impl_->root / "jit").string());
    const long long age = stale_tmp_age_ms(impl_->config.ttl_ms);
    exec::jit_cleanup_stale((impl_->root / "jit").string(), age);
    exec::jit_cleanup_stale((impl_->root / "results").string(), age);
}

LeaseWorkSource::~LeaseWorkSource() = default;

size_t LeaseWorkSource::total_slots() const {
    return impl_->config.total_slots;
}

const ShardManifest& LeaseWorkSource::manifest() const {
    return impl_->manifest;
}

size_t LeaseWorkSource::steals() const { return impl_->steals; }

Lease LeaseWorkSource::acquire(size_t max_slots) {
    const long long start = now_ms();
    for (;;) {
        // Chunks are discovered per pass, not read from the config:
        // any worker may have split an oversized chunk since the last
        // pass, publishing new chunk files past the initial count.
        const std::set<size_t> chunks = list_chunks(impl_->root);
        impl_->refresh_done(chunks.size());
        bool all_done = true;
        for (const size_t chunk : chunks) {
            if (impl_->done.count(chunk) != 0) {
                impl_->cleanup_stale_claim(chunk);
                continue;
            }
            all_done = false;
            if (impl_->try_claim(chunk)) {
                // The chunk may have been published (and its claim
                // released) after this pass's refresh_done — a large
                // farm walks many claim reads between the refresh and
                // here. One re-check saves re-running a whole chunk.
                impl_->refresh_done(chunks.size());
                if (impl_->done.count(chunk) != 0) {
                    impl_->release(chunk);
                    continue;
                }
                Lease lease = impl_->lease_for(chunk);
                if (max_slots > 0 && lease.slots.size() > max_slots) {
                    impl_->split(chunk, lease, max_slots);
                }
                return lease;
            }
        }
        if (all_done) return Lease{};
        if (now_ms() - start > impl_->options.acquire_timeout_ms) {
            throw Error("lease acquire timed out after " +
                        std::to_string(impl_->options.acquire_timeout_ms) +
                        " ms with chunks still outstanding in `" +
                        impl_->root.string() + "`");
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(impl_->options.poll_ms));
    }
}

void LeaseWorkSource::complete(const Lease& lease, std::vector<WorkRow> rows) {
    SLPWLO_CHECK(rows.size() == lease.slots.size(),
                 "lease completed with a row count that does not match its "
                 "slot count");
    if (impl_->options.straggle_ms > 0) {
        // Test hook: hold the lease past its deadline so another worker
        // steals and re-runs it — the duplicate-row path downstream.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(impl_->options.straggle_ms));
    }

    ShardResultsFile file;
    file.shard_index = static_cast<int>(lease.id);
    // Informational in the results format (the merge keys on grid
    // fingerprint and slots, not index/count) — a split-off chunk's id
    // may legitimately exceed the config's initial chunk count.
    file.shard_count = static_cast<int>(impl_->config.chunks);
    file.total_slots = impl_->config.total_slots;
    file.grid_fp = impl_->config.grid_fp;
    file.rows.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        file.rows.push_back(make_shard_row(
            lease.slots[i], impl_->manifest.points[lease.slots[i]], rows[i]));
    }

    const std::string name = std::to_string(lease.id) + "." +
                             impl_->next_nonce() + ".rows";
    publish_text(impl_->root / "results" / name, shard_results_text(file));
    impl_->done.insert(static_cast<size_t>(lease.id));
    impl_->release(static_cast<size_t>(lease.id));
}

void LeaseWorkSource::abandon(const Lease& lease) {
    impl_->release(static_cast<size_t>(lease.id));
}

}  // namespace slpwlo::dist
