#include "dist/cache_snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "flow/report.hpp"
#include "support/diagnostics.hpp"
#include "support/kv_format.hpp"

namespace slpwlo::dist {

CacheSnapshot snapshot_cache(const EvalCache& cache) {
    CacheSnapshot snapshot;
    snapshot.entries = cache.export_entries();
    return snapshot;
}

void preload_cache(EvalCache& cache, const CacheSnapshot& snapshot) {
    // store() never touches the hit/miss counters, so a warm start does
    // not masquerade as cache traffic. On a capacity-bounded cache the
    // preload only fills the *free* slots (with the snapshot's
    // highest-keyed entries, which is what FIFO insertion in snapshot
    // order would have kept): resident entries are never displaced and
    // the evictions counter keeps meaning "entries displaced by sweep
    // traffic", not "snapshot overflow".
    size_t begin = 0;
    const size_t capacity = cache.capacity();
    if (capacity > 0) {
        const size_t resident = cache.size();
        const size_t free_slots = capacity > resident ? capacity - resident : 0;
        // The preloadable suffix: walk back from the highest key, where
        // already-resident keys ride along for free (their store is a
        // no-op) and only genuinely new keys consume a slot.
        size_t taken = 0;
        begin = snapshot.entries.size();
        while (begin > 0) {
            if (!cache.contains(snapshot.entries[begin - 1].first)) {
                if (taken == free_slots) break;
                taken++;
            }
            begin--;
        }
    }
    for (size_t i = begin; i < snapshot.entries.size(); ++i) {
        cache.store(snapshot.entries[i].first, snapshot.entries[i].second);
    }
}

std::string cache_snapshot_text(const CacheSnapshot& snapshot) {
    std::ostringstream os;
    os << "# slpwlo evalcache snapshot\n"
       << "snapshot_version = 1\n"
       << "entries = " << snapshot.entries.size() << "\n";
    for (const auto& [key, entry] : snapshot.entries) {
        uint64_t noise_bits;
        static_assert(sizeof(noise_bits) == sizeof(entry.analytic_noise_db));
        std::memcpy(&noise_bits, &entry.analytic_noise_db,
                    sizeof(noise_bits));
        os << "entry = " << fingerprint_hex(key) << " " << entry.scalar_cycles
           << " " << entry.simd_cycles << " " << fingerprint_hex(noise_bits)
           << "\n";
    }
    return os.str();
}

CacheSnapshot parse_cache_snapshot(const std::string& text,
                                   const std::string& source) {
    CacheSnapshot snapshot;
    kv::KvReader reader(text, source);
    kv::KvLine line;
    bool saw_version = false;
    long long declared = -1;
    std::set<std::string> header_seen;

    while (reader.next(line)) {
        // Header keys appear exactly once (silent last-wins would defeat
        // the declared-count check).
        if (!line.key.empty() && line.key != "entry" &&
            !header_seen.insert(line.key).second) {
            reader.fail_here("duplicate key `" + line.key + "`");
        }
        if (line.key == "snapshot_version") {
            snapshot.version =
                kv::to_int(source, line.line, line.key, line.value);
            if (snapshot.version != 1) {
                reader.fail_here("unsupported snapshot_version " + line.value +
                                 " (this reader knows 1)");
            }
            saw_version = true;
        } else if (line.key == "entries") {
            declared = kv::to_ll(source, line.line, line.key, line.value);
        } else if (line.key == "entry") {
            std::istringstream fields(line.value);
            std::string key_hex, scalar, simd, noise_hex;
            std::string extra;
            if (!(fields >> key_hex >> scalar >> simd >> noise_hex) ||
                (fields >> extra)) {
                reader.fail_here(
                    "entry expects `<key> <scalar> <simd> <noise bits>`");
            }
            const uint64_t key =
                kv::to_fingerprint(source, line.line, "entry key", key_hex);
            EvalCache::Entry entry;
            entry.scalar_cycles =
                kv::to_ll(source, line.line, "entry scalar cycles", scalar);
            entry.simd_cycles =
                kv::to_ll(source, line.line, "entry simd cycles", simd);
            const uint64_t noise_bits = kv::to_fingerprint(
                source, line.line, "entry noise bits", noise_hex);
            std::memcpy(&entry.analytic_noise_db, &noise_bits,
                        sizeof(entry.analytic_noise_db));
            if (!snapshot.entries.empty() &&
                key <= snapshot.entries.back().first) {
                reader.fail_here(
                    "entry keys must be strictly ascending (key " + key_hex +
                    ")");
            }
            snapshot.entries.emplace_back(key, entry);
        } else if (line.key.empty()) {
            reader.fail_here("expected `key = value`, got `" + line.value +
                             "`");
        } else {
            reader.fail_here("unknown key `" + line.key + "`");
        }
    }

    if (!saw_version) throw Error(source + ": missing snapshot_version");
    if (declared >= 0 &&
        static_cast<size_t>(declared) != snapshot.entries.size()) {
        throw Error(source + ": header declares " + std::to_string(declared) +
                    " entries, file has " +
                    std::to_string(snapshot.entries.size()));
    }
    return snapshot;
}

CacheSnapshot load_cache_snapshot(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read cache snapshot `" + path + "`");
    std::ostringstream text;
    text << in.rdbuf();
    return parse_cache_snapshot(text.str(), path);
}

CacheSnapshot merge_cache_snapshots(const std::vector<CacheSnapshot>& parts) {
    CacheSnapshot merged;
    for (const CacheSnapshot& part : parts) {
        for (const auto& [key, entry] : part.entries) {
            merged.entries.emplace_back(key, entry);
        }
    }
    std::sort(merged.entries.begin(), merged.entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    size_t keep = 0;
    for (size_t i = 0; i < merged.entries.size(); ++i) {
        if (keep > 0 && merged.entries[i].first ==
                            merged.entries[keep - 1].first) {
            if (merged.entries[i].second != merged.entries[keep - 1].second) {
                throw Error(
                    "evalcache snapshot merge conflict: key " +
                    fingerprint_hex(merged.entries[i].first) +
                    " has two different entries — hash collision or "
                    "nondeterministic evaluation");
            }
            continue;  // benign duplicate
        }
        merged.entries[keep++] = merged.entries[i];
    }
    merged.entries.resize(keep);
    return merged;
}

uint64_t snapshot_fingerprint(const CacheSnapshot& snapshot) {
    constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kFnvPrime = 0x100000001b3ull;
    uint64_t h = kFnvOffset;
    const auto mix = [&](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= kFnvPrime;
        }
    };
    mix(static_cast<uint64_t>(snapshot.version));
    mix(snapshot.entries.size());
    for (const auto& [key, entry] : snapshot.entries) {
        mix(key);
        mix(static_cast<uint64_t>(entry.scalar_cycles));
        mix(static_cast<uint64_t>(entry.simd_cycles));
        uint64_t noise_bits;
        std::memcpy(&noise_bits, &entry.analytic_noise_db,
                    sizeof(noise_bits));
        mix(noise_bits);
    }
    return h;
}

}  // namespace slpwlo::dist
