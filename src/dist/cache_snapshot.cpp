#include "dist/cache_snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "flow/report.hpp"
#include "support/diagnostics.hpp"
#include "support/kv_format.hpp"

namespace slpwlo::dist {

CacheSnapshot snapshot_cache(const EvalCache& cache) {
    CacheSnapshot snapshot;
    snapshot.entries = cache.export_entries();
    snapshot.stage_entries = cache.export_stage_entries();
    return snapshot;
}

void preload_cache(EvalCache& cache, const CacheSnapshot& snapshot) {
    // store() never touches the hit/miss counters, so a warm start does
    // not masquerade as cache traffic. On a capacity-bounded cache the
    // preload only fills the *free* slots (with the snapshot's
    // highest-keyed entries, which is what FIFO insertion in snapshot
    // order would have kept): resident entries are never displaced and
    // the evictions counter keeps meaning "entries displaced by sweep
    // traffic", not "snapshot overflow".
    size_t begin = 0;
    const size_t capacity = cache.capacity();
    if (capacity > 0) {
        const size_t resident = cache.size();
        const size_t free_slots = capacity > resident ? capacity - resident : 0;
        // The preloadable suffix: walk back from the highest key, where
        // already-resident keys ride along for free (their store is a
        // no-op) and only genuinely new keys consume a slot.
        size_t taken = 0;
        begin = snapshot.entries.size();
        while (begin > 0) {
            if (!cache.contains(snapshot.entries[begin - 1].first)) {
                if (taken == free_slots) break;
                taken++;
            }
            begin--;
        }
    }
    for (size_t i = begin; i < snapshot.entries.size(); ++i) {
        cache.store(snapshot.entries[i].first, snapshot.entries[i].second);
    }

    // Stage-memo table: same free-slot discipline against the shared
    // capacity bound (each table is bounded independently).
    size_t stage_begin = 0;
    if (capacity > 0) {
        const size_t resident = cache.stage_size();
        const size_t free_slots = capacity > resident ? capacity - resident : 0;
        size_t taken = 0;
        stage_begin = snapshot.stage_entries.size();
        while (stage_begin > 0) {
            if (!cache.contains_stage(
                    snapshot.stage_entries[stage_begin - 1].first)) {
                if (taken == free_slots) break;
                taken++;
            }
            stage_begin--;
        }
    }
    for (size_t i = stage_begin; i < snapshot.stage_entries.size(); ++i) {
        cache.store_stage(snapshot.stage_entries[i].first,
                          snapshot.stage_entries[i].second);
    }
}

namespace {

uint64_t double_to_bits(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double bits_to_double(uint64_t bits) {
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/// Flatten one StageEntry into the space-separated token stream described
/// in the header comment (explicit counts make it self-delimiting).
void write_stage_entry(std::ostream& os, const EvalCache::StageEntry& e) {
    os << static_cast<int>(e.quant_mode) << " " << e.formats.size();
    for (const FixedFormat& f : e.formats) os << " " << f.iwl << " " << f.fwl;
    os << " " << e.groups.size();
    for (const BlockGroups& bg : e.groups) {
        os << " " << bg.block.value << " " << bg.groups.size();
        for (const SimdGroup& g : bg.groups) {
            os << " " << g.lanes.size();
            for (const OpId lane : g.lanes) os << " " << lane.value;
        }
    }
    const SlpStats& s = e.slp_stats;
    os << " " << s.rounds << " " << s.candidates_seen << " "
       << s.invalid_candidates << " " << s.structural_conflicts << " "
       << s.extra_conflicts << " " << s.selected << " "
       << s.rejected_at_select << " " << s.devirtualized;
    const ScalingStats& c = e.scaling_stats;
    os << " " << c.reuses_examined << " " << c.already_uniform << " "
       << c.equalized << " " << c.reverted << " " << c.skipped_negative << " "
       << c.skipped_shared_node;
    const TabuStats& t = e.tabu_stats;
    os << " " << t.iterations << " " << t.improvements << " "
       << fingerprint_hex(double_to_bits(t.initial_cost)) << " "
       << fingerprint_hex(double_to_bits(t.best_cost)) << " "
       << (t.feasible ? 1 : 0);
    os << " " << e.group_count;
    // Solver statistics (snapshot_version >= 3), appended after the v2
    // token stream so a v2 line is exactly a v3 line minus this suffix.
    const SolverStats& v = e.solver_stats;
    os << " " << (v.ran ? 1 : 0) << " " << v.nodes << " " << v.solves << " "
       << (v.proven_optimal ? 1 : 0) << " "
       << fingerprint_hex(double_to_bits(v.heuristic_objective)) << " "
       << fingerprint_hex(double_to_bits(v.best_objective)) << " "
       << fingerprint_hex(double_to_bits(v.gap));
}

/// Token-stream reader over one stage_entry line; every extraction failure
/// carries the source location.
class StageFieldReader {
public:
    StageFieldReader(std::string value, const std::string& source, int line)
        : fields_(std::move(value)), source_(source), line_(line) {}

    long long next_ll(const char* what) {
        std::string token;
        if (!(fields_ >> token)) {
            throw Error(source_ + ":" + std::to_string(line_) +
                        ": stage_entry truncated (expected " + what + ")");
        }
        return kv::to_ll(source_, line_, what, token);
    }

    int next_int(const char* what) {
        return static_cast<int>(next_ll(what));
    }

    size_t next_count(const char* what) {
        const long long n = next_ll(what);
        if (n < 0) {
            throw Error(source_ + ":" + std::to_string(line_) +
                        ": stage_entry " + what + " must be >= 0");
        }
        return static_cast<size_t>(n);
    }

    uint64_t next_bits(const char* what) {
        std::string token;
        if (!(fields_ >> token)) {
            throw Error(source_ + ":" + std::to_string(line_) +
                        ": stage_entry truncated (expected " + what + ")");
        }
        return kv::to_fingerprint(source_, line_, what, token);
    }

    void finish() {
        std::string extra;
        if (fields_ >> extra) {
            throw Error(source_ + ":" + std::to_string(line_) +
                        ": stage_entry has trailing fields (`" + extra + "`)");
        }
    }

private:
    std::istringstream fields_;
    const std::string& source_;
    int line_;
};

std::pair<uint64_t, EvalCache::StageEntry> parse_stage_entry(
    const std::string& value, int version, const std::string& source,
    int line) {
    StageFieldReader in(value, source, line);
    const uint64_t key = in.next_bits("stage key");
    EvalCache::StageEntry e;
    const int mode = in.next_int("quant mode");
    if (mode != 0 && mode != 1) {
        throw Error(source + ":" + std::to_string(line) +
                    ": stage_entry quant mode must be 0 or 1");
    }
    e.quant_mode = static_cast<QuantMode>(mode);
    e.formats.resize(in.next_count("format count"));
    for (FixedFormat& f : e.formats) {
        f.iwl = in.next_int("format iwl");
        f.fwl = in.next_int("format fwl");
    }
    e.groups.resize(in.next_count("block count"));
    for (BlockGroups& bg : e.groups) {
        bg.block = BlockId(in.next_int("block id"));
        bg.groups.resize(in.next_count("group count"));
        for (SimdGroup& g : bg.groups) {
            g.lanes.resize(in.next_count("lane count"));
            for (OpId& lane : g.lanes) lane = OpId(in.next_int("lane op"));
        }
    }
    SlpStats& s = e.slp_stats;
    s.rounds = in.next_int("slp rounds");
    s.candidates_seen = in.next_int("slp candidates");
    s.invalid_candidates = in.next_int("slp invalid");
    s.structural_conflicts = in.next_int("slp structural conflicts");
    s.extra_conflicts = in.next_int("slp extra conflicts");
    s.selected = in.next_int("slp selected");
    s.rejected_at_select = in.next_int("slp rejected");
    s.devirtualized = in.next_int("slp devirtualized");
    ScalingStats& c = e.scaling_stats;
    c.reuses_examined = in.next_int("scaling examined");
    c.already_uniform = in.next_int("scaling uniform");
    c.equalized = in.next_int("scaling equalized");
    c.reverted = in.next_int("scaling reverted");
    c.skipped_negative = in.next_int("scaling skipped negative");
    c.skipped_shared_node = in.next_int("scaling skipped shared");
    TabuStats& t = e.tabu_stats;
    t.iterations = in.next_int("tabu iterations");
    t.improvements = in.next_int("tabu improvements");
    t.initial_cost = bits_to_double(in.next_bits("tabu initial cost bits"));
    t.best_cost = bits_to_double(in.next_bits("tabu best cost bits"));
    t.feasible = in.next_int("tabu feasible") != 0;
    e.group_count = in.next_int("group count total");
    // Version-gated suffix: v2 lines end here, v3 carries the solver
    // statistics. A v2 snapshot deserializes with zero (ran == false)
    // solver stats — correct, since v2 caches predate the exact flows.
    if (version >= 3) {
        SolverStats& v = e.solver_stats;
        v.ran = in.next_int("solver ran") != 0;
        v.nodes = in.next_ll("solver nodes");
        v.solves = in.next_ll("solver solves");
        v.proven_optimal = in.next_int("solver proven") != 0;
        v.heuristic_objective =
            bits_to_double(in.next_bits("solver heuristic bits"));
        v.best_objective = bits_to_double(in.next_bits("solver best bits"));
        v.gap = bits_to_double(in.next_bits("solver gap bits"));
    }
    in.finish();
    return {key, std::move(e)};
}

}  // namespace

std::string cache_snapshot_text(const CacheSnapshot& snapshot) {
    std::ostringstream os;
    os << "# slpwlo evalcache snapshot\n"
       << "snapshot_version = 3\n"
       << "entries = " << snapshot.entries.size() << "\n";
    for (const auto& [key, entry] : snapshot.entries) {
        os << "entry = " << fingerprint_hex(key) << " " << entry.scalar_cycles
           << " " << entry.simd_cycles << " "
           << fingerprint_hex(double_to_bits(entry.analytic_noise_db)) << "\n";
    }
    os << "stage_entries = " << snapshot.stage_entries.size() << "\n";
    for (const auto& [key, entry] : snapshot.stage_entries) {
        os << "stage_entry = " << fingerprint_hex(key) << " ";
        write_stage_entry(os, entry);
        os << "\n";
    }
    return os.str();
}

CacheSnapshot parse_cache_snapshot(const std::string& text,
                                   const std::string& source) {
    CacheSnapshot snapshot;
    kv::KvReader reader(text, source);
    kv::KvLine line;
    bool saw_version = false;
    long long declared = -1;
    long long declared_stages = -1;
    std::set<std::string> header_seen;

    while (reader.next(line)) {
        // Header keys appear exactly once (silent last-wins would defeat
        // the declared-count check).
        if (!line.key.empty() && line.key != "entry" &&
            line.key != "stage_entry" &&
            !header_seen.insert(line.key).second) {
            reader.fail_here("duplicate key `" + line.key + "`");
        }
        if (line.key == "snapshot_version") {
            snapshot.version =
                kv::to_int(source, line.line, line.key, line.value);
            if (snapshot.version < 1 || snapshot.version > 3) {
                reader.fail_here("unsupported snapshot_version " + line.value +
                                 " (this reader knows 1 to 3)");
            }
            saw_version = true;
        } else if (line.key == "entries") {
            declared = kv::to_ll(source, line.line, line.key, line.value);
        } else if (line.key == "stage_entries") {
            declared_stages =
                kv::to_ll(source, line.line, line.key, line.value);
        } else if (line.key == "stage_entry") {
            if (!saw_version) {
                reader.fail_here(
                    "stage_entry before snapshot_version (the entry "
                    "format is versioned)");
            }
            auto [key, entry] = parse_stage_entry(line.value, snapshot.version,
                                                  source, line.line);
            if (!snapshot.stage_entries.empty() &&
                key <= snapshot.stage_entries.back().first) {
                reader.fail_here(
                    "stage_entry keys must be strictly ascending (key " +
                    fingerprint_hex(key) + ")");
            }
            snapshot.stage_entries.emplace_back(key, std::move(entry));
        } else if (line.key == "entry") {
            std::istringstream fields(line.value);
            std::string key_hex, scalar, simd, noise_hex;
            std::string extra;
            if (!(fields >> key_hex >> scalar >> simd >> noise_hex) ||
                (fields >> extra)) {
                reader.fail_here(
                    "entry expects `<key> <scalar> <simd> <noise bits>`");
            }
            const uint64_t key =
                kv::to_fingerprint(source, line.line, "entry key", key_hex);
            EvalCache::Entry entry;
            entry.scalar_cycles =
                kv::to_ll(source, line.line, "entry scalar cycles", scalar);
            entry.simd_cycles =
                kv::to_ll(source, line.line, "entry simd cycles", simd);
            const uint64_t noise_bits = kv::to_fingerprint(
                source, line.line, "entry noise bits", noise_hex);
            std::memcpy(&entry.analytic_noise_db, &noise_bits,
                        sizeof(entry.analytic_noise_db));
            if (!snapshot.entries.empty() &&
                key <= snapshot.entries.back().first) {
                reader.fail_here(
                    "entry keys must be strictly ascending (key " + key_hex +
                    ")");
            }
            snapshot.entries.emplace_back(key, entry);
        } else if (line.key.empty()) {
            reader.fail_here("expected `key = value`, got `" + line.value +
                             "`");
        } else {
            reader.fail_here("unknown key `" + line.key + "`");
        }
    }

    if (!saw_version) throw Error(source + ": missing snapshot_version");
    if (declared >= 0 &&
        static_cast<size_t>(declared) != snapshot.entries.size()) {
        throw Error(source + ": header declares " + std::to_string(declared) +
                    " entries, file has " +
                    std::to_string(snapshot.entries.size()));
    }
    if (snapshot.version == 1 && !snapshot.stage_entries.empty()) {
        throw Error(source + ": version-1 snapshots cannot carry stage "
                             "entries");
    }
    if (declared_stages >= 0 &&
        static_cast<size_t>(declared_stages) !=
            snapshot.stage_entries.size()) {
        throw Error(source + ": header declares " +
                    std::to_string(declared_stages) +
                    " stage entries, file has " +
                    std::to_string(snapshot.stage_entries.size()));
    }
    return snapshot;
}

CacheSnapshot load_cache_snapshot(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read cache snapshot `" + path + "`");
    std::ostringstream text;
    text << in.rdbuf();
    return parse_cache_snapshot(text.str(), path);
}

CacheSnapshot merge_cache_snapshots(const std::vector<CacheSnapshot>& parts) {
    CacheSnapshot merged;
    for (const CacheSnapshot& part : parts) {
        for (const auto& [key, entry] : part.entries) {
            merged.entries.emplace_back(key, entry);
        }
    }
    std::sort(merged.entries.begin(), merged.entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    size_t keep = 0;
    for (size_t i = 0; i < merged.entries.size(); ++i) {
        if (keep > 0 && merged.entries[i].first ==
                            merged.entries[keep - 1].first) {
            if (merged.entries[i].second != merged.entries[keep - 1].second) {
                throw Error(
                    "evalcache snapshot merge conflict: key " +
                    fingerprint_hex(merged.entries[i].first) +
                    " has two different entries — hash collision or "
                    "nondeterministic evaluation");
            }
            continue;  // benign duplicate
        }
        merged.entries[keep++] = merged.entries[i];
    }
    merged.entries.resize(keep);

    for (const CacheSnapshot& part : parts) {
        for (const auto& [key, entry] : part.stage_entries) {
            merged.stage_entries.emplace_back(key, entry);
        }
    }
    std::sort(merged.stage_entries.begin(), merged.stage_entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    size_t stage_keep = 0;
    for (size_t i = 0; i < merged.stage_entries.size(); ++i) {
        if (stage_keep > 0 &&
            merged.stage_entries[i].first ==
                merged.stage_entries[stage_keep - 1].first) {
            if (merged.stage_entries[i].second !=
                merged.stage_entries[stage_keep - 1].second) {
                throw Error(
                    "evalcache snapshot merge conflict: stage key " +
                    fingerprint_hex(merged.stage_entries[i].first) +
                    " has two different entries — hash collision or "
                    "nondeterministic optimization");
            }
            continue;  // benign duplicate
        }
        if (stage_keep != i) {
            merged.stage_entries[stage_keep] =
                std::move(merged.stage_entries[i]);
        }
        stage_keep++;
    }
    merged.stage_entries.resize(stage_keep);
    return merged;
}

uint64_t snapshot_fingerprint(const CacheSnapshot& snapshot) {
    constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kFnvPrime = 0x100000001b3ull;
    uint64_t h = kFnvOffset;
    const auto mix = [&](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= kFnvPrime;
        }
    };
    mix(static_cast<uint64_t>(snapshot.version));
    mix(snapshot.entries.size());
    for (const auto& [key, entry] : snapshot.entries) {
        mix(key);
        mix(static_cast<uint64_t>(entry.scalar_cycles));
        mix(static_cast<uint64_t>(entry.simd_cycles));
        uint64_t noise_bits;
        std::memcpy(&noise_bits, &entry.analytic_noise_db,
                    sizeof(noise_bits));
        mix(noise_bits);
    }
    mix(snapshot.stage_entries.size());
    for (const auto& [key, entry] : snapshot.stage_entries) {
        mix(key);
        // The full flattened form (the same bytes the text format carries)
        // keeps the fingerprint sensitive to every field.
        std::ostringstream flat;
        write_stage_entry(flat, entry);
        const std::string text = flat.str();
        mix(text.size());
        for (const char ch : text) {
            mix(static_cast<uint64_t>(static_cast<unsigned char>(ch)));
        }
    }
    return h;
}

}  // namespace slpwlo::dist
