#include "frontend/lower_ast.hpp"

#include <map>

#include "ir/builder.hpp"
#include "ir/unroll.hpp"
#include "ir/verifier.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {
namespace {

class AstLowering {
public:
    explicit AstLowering(const ast::KernelAst& kernel_ast)
        : ast_(kernel_ast), builder_(kernel_ast.name) {}

    Kernel run() {
        for (const ast::Decl& decl : ast_.decls) {
            lower_decl(decl);
        }
        for (const auto& stmt : ast_.body) {
            lower_stmt(*stmt);
        }
        return builder_.take();
    }

private:
    [[noreturn]] void fail(const std::string& message, int line,
                           int column) const {
        throw ParseError(message, line, column);
    }

    void lower_decl(const ast::Decl& decl) {
        if (arrays_.count(decl.name) != 0 || vars_.count(decl.name) != 0) {
            fail("duplicate declaration of `" + decl.name + "`", decl.line,
                 decl.column);
        }
        switch (decl.kind) {
            case ast::Decl::Kind::Input:
                arrays_[decl.name] =
                    builder_.input(decl.name, decl.size, decl.range);
                break;
            case ast::Decl::Kind::Param:
                if (static_cast<int>(decl.values.size()) != decl.size) {
                    fail("param `" + decl.name + "` declares " +
                             std::to_string(decl.size) + " elements but has " +
                             std::to_string(decl.values.size()) + " values",
                         decl.line, decl.column);
                }
                arrays_[decl.name] = builder_.param(decl.name, decl.values);
                break;
            case ast::Decl::Kind::Output:
                arrays_[decl.name] = builder_.output(decl.name, decl.size);
                break;
            case ast::Decl::Kind::Buffer:
                arrays_[decl.name] = builder_.buffer(decl.name, decl.size);
                break;
            case ast::Decl::Kind::Var:
                vars_[decl.name] = builder_.user_var(decl.name);
                break;
        }
    }

    void lower_stmt(const ast::Stmt& stmt) {
        if (stmt.kind == ast::Stmt::Kind::Loop) {
            if (loops_.count(stmt.loop_var) != 0 ||
                vars_.count(stmt.loop_var) != 0) {
                fail("loop variable `" + stmt.loop_var + "` shadows another "
                     "name",
                     stmt.line, stmt.column);
            }
            if (stmt.begin >= stmt.end) {
                fail("empty loop range", stmt.line, stmt.column);
            }
            const LoopId loop = builder_.begin_loop(stmt.loop_var, stmt.begin,
                                                    stmt.end, stmt.unroll);
            loops_[stmt.loop_var] = loop;
            for (const auto& inner : stmt.body) {
                lower_stmt(*inner);
            }
            loops_.erase(stmt.loop_var);
            builder_.end_loop();
            return;
        }

        // Assignment.
        const ast::Expr& target = *stmt.target;
        if (target.kind == ast::Expr::Kind::VarRef) {
            const auto it = vars_.find(target.name);
            if (it == vars_.end()) {
                fail("assignment to undeclared variable `" + target.name + "`",
                     target.line, target.column);
            }
            lower_expr(*stmt.value, it->second);
        } else {
            const auto it = arrays_.find(target.name);
            if (it == arrays_.end()) {
                fail("store to undeclared array `" + target.name + "`",
                     target.line, target.column);
            }
            const VarId value = lower_expr(*stmt.value, VarId());
            builder_.store(it->second, affine_of(*target.index), value);
        }
    }

    /// Reduce an index expression to an affine form over loop variables.
    Affine affine_of(const ast::Expr& expr) const {
        switch (expr.kind) {
            case ast::Expr::Kind::Number: {
                const int i = static_cast<int>(expr.number);
                if (static_cast<double>(i) != expr.number) {
                    fail("array index must be integral", expr.line,
                         expr.column);
                }
                return Affine(i);
            }
            case ast::Expr::Kind::VarRef: {
                const auto it = loops_.find(expr.name);
                if (it == loops_.end()) {
                    fail("array index uses `" + expr.name +
                             "`, which is not an enclosing loop variable",
                         expr.line, expr.column);
                }
                return Affine::var(it->second);
            }
            case ast::Expr::Kind::Unary:
                return -affine_of(*expr.lhs);
            case ast::Expr::Kind::Binary: {
                const Affine lhs = affine_of(*expr.lhs);
                const Affine rhs = affine_of(*expr.rhs);
                switch (expr.op) {
                    case '+': return lhs + rhs;
                    case '-': return lhs - rhs;
                    case '*':
                        if (rhs.is_constant()) return lhs * rhs.offset();
                        if (lhs.is_constant()) return rhs * lhs.offset();
                        fail("array index is not affine (product of two "
                             "loop variables)",
                             expr.line, expr.column);
                    default:
                        fail("array index is not affine (unsupported "
                             "operator)",
                             expr.line, expr.column);
                }
            }
            case ast::Expr::Kind::ArrayRef:
                fail("array index must not subscript arrays", expr.line,
                     expr.column);
        }
        fail("malformed index expression", expr.line, expr.column);
    }

    /// Lower a value expression; the result is written into `dest` when
    /// valid, otherwise a fresh temporary is produced.
    VarId lower_expr(const ast::Expr& expr, VarId dest) {
        switch (expr.kind) {
            case ast::Expr::Kind::Number:
                return builder_.set_const(dest, expr.number);
            case ast::Expr::Kind::VarRef: {
                const auto it = vars_.find(expr.name);
                if (it == vars_.end()) {
                    fail("use of undeclared variable `" + expr.name + "`",
                         expr.line, expr.column);
                }
                if (!dest.valid() || dest == it->second) return it->second;
                return builder_.copy(it->second, dest);
            }
            case ast::Expr::Kind::ArrayRef: {
                const auto it = arrays_.find(expr.name);
                if (it == arrays_.end()) {
                    fail("load from undeclared array `" + expr.name + "`",
                         expr.line, expr.column);
                }
                return builder_.load(it->second, affine_of(*expr.index),
                                     dest);
            }
            case ast::Expr::Kind::Unary:
                return builder_.neg(lower_expr(*expr.lhs, VarId()), dest);
            case ast::Expr::Kind::Binary: {
                const VarId lhs = lower_expr(*expr.lhs, VarId());
                const VarId rhs = lower_expr(*expr.rhs, VarId());
                switch (expr.op) {
                    case '+': return builder_.add(lhs, rhs, dest);
                    case '-': return builder_.sub(lhs, rhs, dest);
                    case '*': return builder_.mul(lhs, rhs, dest);
                    case '/': return builder_.div(lhs, rhs, dest);
                    default:
                        fail("unsupported operator", expr.line, expr.column);
                }
            }
        }
        fail("malformed expression", expr.line, expr.column);
    }

    const ast::KernelAst& ast_;
    KernelBuilder builder_;
    std::map<std::string, ArrayId> arrays_;
    std::map<std::string, VarId> vars_;
    std::map<std::string, LoopId> loops_;
};

}  // namespace

Kernel lower_ast(const ast::KernelAst& kernel_ast) {
    return AstLowering(kernel_ast).run();
}

Kernel compile_kernel_source(const std::string& source) {
    Kernel kernel = unroll_kernel(lower_ast(ast::parse(source)));
    verify_kernel(kernel);
    return kernel;
}

}  // namespace slpwlo
