// Seeded random-kernel generator: deterministic DSL sources for the
// differential robustness harness (bench/corpus_differential.cpp).
//
// generate_kernel_source(seed) produces the *text* of a valid affine
// loop-nest kernel — reductions, elementwise stencils, dual accumulators,
// flattened small matmuls — with randomized shapes, trip counts, unroll
// factors and coefficients. Generating source (not IR) means every
// generated kernel also exercises the lexer/parser/lowering path, and
// determinism is byte-level: the same seed yields the same bytes on every
// platform (all draws come from the named Rng stream "kernel_gen"; floats
// render through kv::exact_double's %.17g round-trip form).
//
// Validity by construction: loop ranges are non-empty, unroll factors
// divide their trip counts, every array subscript is affine in the
// enclosing loop variables, and input sizes cover the maximum index.
// Generated kernels are feed-forward, so interval range analysis always
// converges on them.
#pragma once

#include <cstdint>
#include <string>

#include "kernels/kernels.hpp"

namespace slpwlo::frontend {

struct GeneratedKernel {
    std::string name;    ///< "gen_<seed>" — the DSL kernel name
    std::string source;  ///< complete DSL text (byte-deterministic per seed)
};

/// Deterministic DSL source for `seed`; same seed, same bytes.
GeneratedKernel generate_kernel_source(uint64_t seed);

/// generate_kernel_source compiled through the ingestion path
/// (kernel_file.hpp's compile_benchmark_source).
kernels::BenchmarkKernel generate_kernel(uint64_t seed);

}  // namespace slpwlo::frontend
