// Seeded random-kernel generator: deterministic DSL sources for the
// differential robustness harness (bench/corpus_differential.cpp).
//
// generate_kernel_source(seed) produces the *text* of a valid affine
// loop-nest kernel — reductions, elementwise stencils, dual accumulators,
// flattened small matmuls — with randomized shapes, trip counts, unroll
// factors and coefficients. Generating source (not IR) means every
// generated kernel also exercises the lexer/parser/lowering path, and
// determinism is byte-level: the same seed yields the same bytes on every
// platform (all draws come from the named Rng stream "kernel_gen"; floats
// render through kv::exact_double's %.17g round-trip form).
//
// Validity by construction: loop ranges are non-empty, unroll factors
// divide their trip counts, every array subscript is affine in the
// enclosing loop variables, and input sizes cover the maximum index.
// Generated kernels are feed-forward, so interval range analysis always
// converges on them.
#pragma once

#include <cstdint>
#include <string>

#include "kernels/kernels.hpp"

namespace slpwlo::frontend {

struct GeneratedKernel {
    std::string name;    ///< "gen_<seed>" / "genh_<seed>" — the DSL name
    std::string source;  ///< complete DSL text (byte-deterministic per seed)
};

struct GenOptions {
    /// Bias the generated shapes *against* SLP packing: non-adjacent
    /// load strides (x[2i], x[3i+1] — superficially isomorphic lanes
    /// whose loads never form a contiguous group) and mixed-array
    /// statements (neighbouring lanes pulling from different buffers).
    /// The differential harness runs a hostile batch alongside the
    /// friendly one so "the flow still meets its constraint when SLP
    /// finds nothing" stays a tested property, not an assumption.
    /// Hostile kernels are named "genh_<seed>" — a distinct registry
    /// namespace, so friendly and hostile kernels of one seed coexist.
    bool slp_hostile = false;
};

/// Deterministic DSL source for `seed`; same seed (and options), same
/// bytes.
GeneratedKernel generate_kernel_source(uint64_t seed,
                                       const GenOptions& options = {});

/// generate_kernel_source compiled through the ingestion path
/// (kernel_file.hpp's compile_benchmark_source).
kernels::BenchmarkKernel generate_kernel(uint64_t seed,
                                         const GenOptions& options = {});

}  // namespace slpwlo::frontend
