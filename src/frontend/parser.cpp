#include "frontend/parser.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo::ast {
namespace {

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    KernelAst run() {
        KernelAst kernel;
        expect(TokKind::KwKernel);
        kernel.name = expect(TokKind::Identifier).text;
        expect(TokKind::LBrace);
        // Kernel-level annotations precede the declarations. `range` is
        // unambiguous here: as a decl suffix it only ever follows an
        // input's `]`, never starts a line at declaration position.
        while (at(TokKind::KwRange)) {
            parse_range_annotation(kernel);
        }
        while (is_decl_start()) {
            parse_decl(kernel);
        }
        while (!at(TokKind::RBrace)) {
            kernel.body.push_back(parse_stmt());
        }
        expect(TokKind::RBrace);
        expect(TokKind::End);
        return kernel;
    }

private:
    const Token& peek(int ahead = 0) const {
        const size_t idx = std::min(pos_ + static_cast<size_t>(ahead),
                                    tokens_.size() - 1);
        return tokens_[idx];
    }
    bool at(TokKind kind) const { return peek().kind == kind; }

    Token expect(TokKind kind) {
        if (!at(kind)) {
            throw ParseError("expected " + to_string(kind) + ", found " +
                                 to_string(peek().kind) +
                                 (peek().text.empty() ? ""
                                                      : " `" + peek().text + "`"),
                             peek().line, peek().column);
        }
        return tokens_[pos_++];
    }

    bool accept(TokKind kind) {
        if (!at(kind)) return false;
        pos_++;
        return true;
    }

    int expect_int() {
        const bool negative = accept(TokKind::Minus);
        const Token t = expect(TokKind::Number);
        const double v = negative ? -t.number : t.number;
        const int i = static_cast<int>(v);
        if (static_cast<double>(i) != v) {
            throw ParseError("expected an integer, found `" + t.text + "`",
                             t.line, t.column);
        }
        return i;
    }

    double expect_num() {
        const bool negative = accept(TokKind::Minus);
        const Token t = expect(TokKind::Number);
        return negative ? -t.number : t.number;
    }

    bool is_decl_start() const {
        switch (peek().kind) {
            case TokKind::KwInput:
            case TokKind::KwParam:
            case TokKind::KwOutput:
            case TokKind::KwBuffer:
            case TokKind::KwVar:
                return true;
            default:
                return false;
        }
    }

    void parse_range_annotation(KernelAst& kernel) {
        const Token kw = expect(TokKind::KwRange);
        if (!kernel.range_method.empty()) {
            throw ParseError("duplicate `range` annotation", kw.line,
                             kw.column);
        }
        const Token method = expect(TokKind::Identifier);
        kernel.range_method = method.text;
        kernel.range_line = method.line;
        kernel.range_column = method.column;
        expect(TokKind::Semicolon);
    }

    void parse_decl(KernelAst& kernel) {
        Decl decl;
        decl.line = peek().line;
        decl.column = peek().column;
        switch (peek().kind) {
            case TokKind::KwVar: {
                pos_++;
                decl.kind = Decl::Kind::Var;
                decl.name = expect(TokKind::Identifier).text;
                kernel.decls.push_back(decl);
                while (accept(TokKind::Comma)) {
                    Decl more = decl;
                    more.name = expect(TokKind::Identifier).text;
                    kernel.decls.push_back(more);
                }
                expect(TokKind::Semicolon);
                return;
            }
            case TokKind::KwInput: decl.kind = Decl::Kind::Input; break;
            case TokKind::KwParam: decl.kind = Decl::Kind::Param; break;
            case TokKind::KwOutput: decl.kind = Decl::Kind::Output; break;
            case TokKind::KwBuffer: decl.kind = Decl::Kind::Buffer; break;
            default: break;
        }
        pos_++;
        decl.name = expect(TokKind::Identifier).text;
        expect(TokKind::LBracket);
        decl.size = expect_int();
        expect(TokKind::RBracket);
        if (decl.kind == Decl::Kind::Input) {
            expect(TokKind::KwRange);
            expect(TokKind::LParen);
            const double lo = expect_num();
            expect(TokKind::Comma);
            const double hi = expect_num();
            expect(TokKind::RParen);
            decl.range = Interval(lo, hi);
        } else if (decl.kind == Decl::Kind::Param) {
            expect(TokKind::Assign);
            expect(TokKind::LBrace);
            decl.values.push_back(expect_num());
            while (accept(TokKind::Comma)) {
                decl.values.push_back(expect_num());
            }
            expect(TokKind::RBrace);
        }
        expect(TokKind::Semicolon);
        kernel.decls.push_back(std::move(decl));
    }

    StmtPtr parse_stmt() {
        auto stmt = std::make_unique<Stmt>();
        stmt->line = peek().line;
        stmt->column = peek().column;
        if (accept(TokKind::KwLoop)) {
            stmt->kind = Stmt::Kind::Loop;
            stmt->loop_var = expect(TokKind::Identifier).text;
            expect(TokKind::Assign);
            stmt->begin = expect_int();
            expect(TokKind::DotDot);
            stmt->end = expect_int();
            if (accept(TokKind::KwUnroll)) {
                stmt->unroll = expect_int();
            }
            expect(TokKind::LBrace);
            while (!at(TokKind::RBrace)) {
                stmt->body.push_back(parse_stmt());
            }
            expect(TokKind::RBrace);
            return stmt;
        }
        stmt->kind = Stmt::Kind::Assign;
        stmt->target = parse_primary();
        if (stmt->target->kind != Expr::Kind::VarRef &&
            stmt->target->kind != Expr::Kind::ArrayRef) {
            throw ParseError("assignment target must be a variable or array "
                             "element",
                             stmt->line, stmt->column);
        }
        expect(TokKind::Assign);
        stmt->value = parse_expr();
        expect(TokKind::Semicolon);
        return stmt;
    }

    ExprPtr parse_expr() {
        ExprPtr lhs = parse_term();
        while (at(TokKind::Plus) || at(TokKind::Minus)) {
            const char op = at(TokKind::Plus) ? '+' : '-';
            pos_++;
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->op = op;
            // An operator node starts where its left operand starts, so
            // diagnostics raised on the whole expression (e.g. the affine
            // index check in lowering) point at real source.
            node->line = lhs->line;
            node->column = lhs->column;
            node->lhs = std::move(lhs);
            node->rhs = parse_term();
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr parse_term() {
        ExprPtr lhs = parse_unary();
        while (at(TokKind::Star) || at(TokKind::Slash)) {
            const char op = at(TokKind::Star) ? '*' : '/';
            pos_++;
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Binary;
            node->op = op;
            node->line = lhs->line;
            node->column = lhs->column;
            node->lhs = std::move(lhs);
            node->rhs = parse_unary();
            lhs = std::move(node);
        }
        return lhs;
    }

    ExprPtr parse_unary() {
        if (at(TokKind::Minus)) {
            const Token minus = peek();
            pos_++;
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Unary;
            node->op = '-';
            node->line = minus.line;
            node->column = minus.column;
            node->lhs = parse_unary();
            return node;
        }
        return parse_primary();
    }

    ExprPtr parse_primary() {
        auto node = std::make_unique<Expr>();
        node->line = peek().line;
        node->column = peek().column;
        if (at(TokKind::Number)) {
            node->kind = Expr::Kind::Number;
            node->number = expect(TokKind::Number).number;
            return node;
        }
        if (accept(TokKind::LParen)) {
            ExprPtr inner = parse_expr();
            expect(TokKind::RParen);
            return inner;
        }
        const Token ident = expect(TokKind::Identifier);
        node->name = ident.text;
        if (accept(TokKind::LBracket)) {
            node->kind = Expr::Kind::ArrayRef;
            node->index = parse_expr();
            expect(TokKind::RBracket);
        } else {
            node->kind = Expr::Kind::VarRef;
        }
        return node;
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

}  // namespace

KernelAst parse(const std::string& source) {
    return Parser(lex(source)).run();
}

}  // namespace slpwlo::ast
