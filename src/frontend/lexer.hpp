// Lexer for the kernel DSL — the textual frontend playing the role of the
// paper's annotated-C input (Fig. 3 "Floating-pt C code" + pragmas).
//
// The language (see frontend/parser.hpp for the grammar):
//
//   kernel fir4 {
//     input  x[515] range(-1.0, 1.0);
//     param  c[4] = { 0.5, -0.25, 0.125, 0.0625 };
//     output y[512];
//     var acc;
//     loop n = 0..512 {
//       acc = 0.0;
//       loop k = 0..4 unroll 4 {
//         acc = acc + c[k] * x[n - k + 3];
//       }
//       y[n] = acc;
//     }
//   }
#pragma once

#include <string>
#include <vector>

namespace slpwlo {

enum class TokKind {
    Identifier,
    Number,     ///< integer or real literal
    KwKernel, KwInput, KwParam, KwOutput, KwBuffer, KwVar, KwLoop, KwRange,
    KwUnroll,
    LBrace, RBrace, LBracket, RBracket, LParen, RParen,
    Comma, Semicolon, Assign, Plus, Minus, Star, Slash, DotDot,
    End,
};

std::string to_string(TokKind kind);

struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    double number = 0.0;
    int line = 1;
    int column = 1;
};

/// Tokenize DSL source; throws ParseError on illegal characters.
/// Comments run from '#' or "//" to end of line.
std::vector<Token> lex(const std::string& source);

}  // namespace slpwlo
