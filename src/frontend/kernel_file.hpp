// `.slp` kernel files: the runtime ingestion path that makes kernels data,
// symmetric with `.target` descriptions (target/target_desc.hpp).
//
// A kernel file is one DSL kernel definition (frontend/lexer.hpp shows the
// language). compile_benchmark_source parses, lowers, unrolls and verifies
// it into a BenchmarkKernel, mapping the optional kernel-level
//
//   range simulation;        # or: interval / auto (the default)
//
// annotation onto the RangeOptions the flows must use — recursive kernels
// (the IIR-style simulated-ranges case) declare `range simulation` because
// interval propagation diverges through their feedback taps.
//
// Loaded kernels register in the KernelRegistry
// (kernels/kernel_registry.hpp) together with their DSL source text, which
// is what shard manifests embed so worker processes reconstruct file-based
// kernels by content instead of resolving names they may not know
// (dist/shard_manifest.hpp).
//
// All diagnostics carry `path:line:column:` positions.
#pragma once

#include <string>
#include <vector>

#include "kernels/kernels.hpp"

namespace slpwlo::frontend {

/// The manifest-safe form of a DSL source: code lines verbatim (minus a
/// trailing carriage return), comment-only and blank lines dropped, every
/// line newline-terminated. This is the form the registry stores and
/// shard manifests embed — the kv container format skips blank and
/// comment lines, so only a source already free of them round-trips
/// byte-for-byte through a `begin_kernel` block. Compiles to the same
/// kernel as the original (the DSL ignores exactly what is stripped).
std::string canonical_kernel_source(const std::string& source);

/// Parse + lower + unroll + verify one DSL kernel into a BenchmarkKernel
/// (range options from the `range` annotation, Auto when absent).
/// `source_name` prefixes diagnostics ("path:line:col: message").
kernels::BenchmarkKernel compile_benchmark_source(
    const std::string& source, const std::string& source_name = "<string>");

/// Read and compile one `.slp` kernel file; throws Error when the file
/// cannot be read or does not compile (diagnostics carry file positions).
kernels::BenchmarkKernel load_kernel_file(const std::string& path);

/// load_kernel_file + KernelRegistry::add (with the file's source text);
/// returns the registered kernel name. Registering the same content twice
/// is a no-op; a name clash with different content throws.
std::string register_kernel_file(const std::string& path);

/// Compile `source` and register it with the registry; returns the kernel
/// name. The idempotent path manifests and sweep points use: same content
/// re-registers as a no-op, a conflicting name throws.
std::string register_kernel_source(const std::string& source,
                                   const std::string& source_name = "<string>");

/// Register every `*.slp` file under `dir` (sorted by filename, so
/// registration order — and any name-clash error — is deterministic);
/// returns the registered kernel names in that order. Throws when `dir`
/// is not a readable directory or any file fails to compile.
std::vector<std::string> load_kernel_corpus(const std::string& dir);

}  // namespace slpwlo::frontend
