// AST -> Kernel lowering (semantic analysis included): declarations become
// arrays/variables, loops map to the IR loop nest (with unroll attributes
// consumed by the unroll pass), expressions flatten to three-address ops,
// and array subscripts must reduce to affine forms over enclosing loop
// variables. Errors are reported as ParseError with source locations.
#pragma once

#include "frontend/parser.hpp"
#include "ir/kernel.hpp"

namespace slpwlo {

/// Lower a parsed kernel (unroll attributes are NOT yet applied; call
/// unroll_kernel for that, as the flows do).
Kernel lower_ast(const ast::KernelAst& kernel_ast);

/// Convenience: parse + lower + unroll + verify.
Kernel compile_kernel_source(const std::string& source);

}  // namespace slpwlo
