// Parser + AST for the kernel DSL.
//
// Grammar (EBNF):
//   kernel     := "kernel" ident "{" annot* decl* stmt* "}"
//   annot      := "range" ident ";"            // range-analysis method:
//                                              // auto|interval|simulation
//   decl       := ("input" ident "[" int "]" "range" "(" num "," num ")" ";")
//               | ("param" ident "[" int "]" "=" "{" num ("," num)* "}" ";")
//               | ("output"|"buffer") ident "[" int "]" ";"
//               | ("var" ident ("," ident)* ";")
//   stmt       := assign | loop
//   loop       := "loop" ident "=" int ".." int ["unroll" int] "{" stmt* "}"
//   assign     := lvalue "=" expr ";"
//   lvalue     := ident | ident "[" expr "]"
//   expr       := term (("+"|"-") term)*
//   term       := unary (("*"|"/") unary)*
//   unary      := "-" unary | primary
//   primary    := number | ident | ident "[" expr "]" | "(" expr ")"
//
// Array index expressions must lower to affine forms over loop variables.
#pragma once

#include <memory>

#include "frontend/lexer.hpp"
#include "support/interval.hpp"

namespace slpwlo::ast {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    enum class Kind { Number, VarRef, ArrayRef, Unary, Binary };
    Kind kind = Kind::Number;
    double number = 0.0;
    std::string name;     ///< VarRef / ArrayRef
    char op = '+';        ///< Unary ('-') / Binary ('+','-','*','/')
    ExprPtr lhs, rhs;     ///< Binary operands / Unary operand in lhs
    ExprPtr index;        ///< ArrayRef index
    int line = 0, column = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
    enum class Kind { Assign, Loop };
    Kind kind = Kind::Assign;
    // Assign: target (VarRef or ArrayRef) and value.
    ExprPtr target, value;
    // Loop.
    std::string loop_var;
    int begin = 0, end = 0, unroll = 1;
    std::vector<StmtPtr> body;
    int line = 0, column = 0;
};

struct Decl {
    enum class Kind { Input, Param, Output, Buffer, Var };
    Kind kind = Kind::Var;
    std::string name;
    int size = 0;
    Interval range;               ///< Input
    std::vector<double> values;   ///< Param
    int line = 0, column = 0;
};

struct KernelAst {
    std::string name;
    /// The `range <method>;` annotation, verbatim ("" when absent). The
    /// parser records the spelling; mapping it onto a RangeMethod — and
    /// rejecting unknown spellings — is the frontend's job
    /// (frontend/kernel_file.hpp), so the AST stays fixpoint-free.
    std::string range_method;
    int range_line = 0, range_column = 0;
    std::vector<Decl> decls;
    std::vector<StmtPtr> body;
};

/// Parse one kernel definition; throws ParseError on malformed input.
KernelAst parse(const std::string& source);

}  // namespace slpwlo::ast
