#include "frontend/kernel_gen.hpp"

#include <sstream>
#include <vector>

#include "frontend/kernel_file.hpp"
#include "support/kv_format.hpp"
#include "support/rng.hpp"

namespace slpwlo::frontend {

namespace {

/// Coefficients away from zero (a tap of exactly 0.0 would be legal but
/// wastes the multiplier it feeds), rendered in round-trip form.
std::string coeff(Rng& rng) {
    double c = rng.uniform(-1.0, 1.0);
    if (c >= 0.0 && c < 0.05) c += 0.05;
    if (c < 0.0 && c > -0.05) c -= 0.05;
    return kv::exact_double(c);
}

std::string coeff_list(Rng& rng, int count) {
    std::ostringstream os;
    for (int i = 0; i < count; ++i) {
        if (i > 0) os << ", ";
        os << coeff(rng);
    }
    return os.str();
}

/// Optional kernel-level range annotation. Generated kernels are
/// feed-forward, so both the default (auto) and an explicit interval or
/// simulation method are valid — emitting each sometimes keeps the
/// annotation path fuzzed along with everything else.
std::string range_annotation(Rng& rng) {
    switch (rng.uniform_int(0, 3)) {
        case 0: return "  range interval;\n";
        case 1: return "  range simulation;\n";
        default: return "";  // auto
    }
}

/// FIR-style sliding reduction: acc += c[k] * x[n + k] over an unrolled
/// tap loop.
void gen_reduction(Rng& rng, std::ostringstream& os) {
    const int unroll = 1 << rng.uniform_int(0, 2);        // 1, 2, 4
    const int taps = unroll * rng.uniform_int(2, 4);      // <= 16
    const int samples = 4 * rng.uniform_int(2, 6);        // 8..24
    os << "  input  x[" << (samples + taps - 1)
       << "] range(-1.0, 1.0);\n"
       << "  param  c[" << taps << "] = { " << coeff_list(rng, taps)
       << " };\n"
       << "  output y[" << samples << "];\n"
       << "  var acc;\n"
       << "  loop n = 0.." << samples << " {\n"
       << "    acc = 0.0;\n"
       << "    loop k = 0.." << taps << " unroll " << unroll << " {\n"
       << "      acc = acc + c[k] * x[n + k];\n"
       << "    }\n"
       << "    y[n] = acc;\n"
       << "  }\n";
}

/// Elementwise 1-D stencil with the *outer* loop unrolled: y[i] is a
/// width-W weighted window of x.
void gen_stencil(Rng& rng, std::ostringstream& os) {
    const int unroll = 1 << rng.uniform_int(0, 2);        // 1, 2, 4
    const int width = rng.uniform_int(2, 5);
    const int points = unroll * rng.uniform_int(3, 6);    // <= 24
    os << "  input  x[" << (points + width - 1)
       << "] range(-1.0, 1.0);\n"
       << "  param  c[" << width << "] = { " << coeff_list(rng, width)
       << " };\n"
       << "  output y[" << points << "];\n"
       << "  loop i = 0.." << points << " unroll " << unroll << " {\n"
       << "    y[i] = ";
    for (int w = 0; w < width; ++w) {
        if (w > 0) os << " + ";
        os << "c[" << w << "] * x[i";
        if (w > 0) os << " + " << w;
        os << "]";
    }
    os << ";\n"
       << "  }\n";
}

/// Two serial accumulation chains over a pair of inputs (the dual-dot
/// shape: isomorphic chains the SLP extractor can pack).
void gen_dual_reduction(Rng& rng, std::ostringstream& os) {
    const int unroll = 1 << rng.uniform_int(0, 2);        // 1, 2, 4
    const int length = unroll * rng.uniform_int(3, 8);    // <= 32
    const std::string w0 = coeff(rng);
    const std::string w1 = coeff(rng);
    os << "  input  a[" << length << "] range(-1.0, 1.0);\n"
       << "  input  b[" << length << "] range(-1.0, 1.0);\n"
       << "  output y[2];\n"
       << "  var s0, s1;\n"
       << "  s0 = 0.0;\n"
       << "  s1 = 0.0;\n"
       << "  loop k = 0.." << length << " unroll " << unroll << " {\n"
       << "    s0 = s0 + " << w0 << " * a[k] * b[k];\n"
       << "    s1 = s1 + " << w1 << " * (a[k] - b[k]);\n"
       << "  }\n"
       << "  y[0] = s0;\n"
       << "  y[1] = s1;\n";
}

/// Small matmul with row-major flattened (affine) addressing:
/// C[i*N + j] = sum_k A[i*K + k] * B[k*N + j], inner loop unrolled.
void gen_matmul(Rng& rng, std::ostringstream& os) {
    const int m = rng.uniform_int(2, 4);
    const int n = rng.uniform_int(2, 4);
    const int unroll = 1 << rng.uniform_int(0, 1);        // 1, 2
    const int k_dim = unroll * rng.uniform_int(1, 3);     // <= 6
    os << "  input  a[" << (m * k_dim) << "] range(-1.0, 1.0);\n"
       << "  param  b[" << (k_dim * n) << "] = { "
       << coeff_list(rng, k_dim * n) << " };\n"
       << "  output p[" << (m * n) << "];\n"
       << "  var acc;\n"
       << "  loop i = 0.." << m << " {\n"
       << "    loop j = 0.." << n << " {\n"
       << "      acc = 0.0;\n"
       << "      loop k = 0.." << k_dim << " unroll " << unroll << " {\n"
       << "        acc = acc + a[i * " << k_dim << " + k] * b[k * " << n
       << " + j];\n"
       << "      }\n"
       << "      p[i * " << n << " + j] = acc;\n"
       << "    }\n"
       << "  }\n";
}

/// SLP-hostile: a stencil whose lanes load at non-adjacent strides.
/// y[i]'s operands look isomorphic across i (same expression tree), but
/// the loads step by 2, 3 and 5 — no pack of neighbouring outputs ever
/// finds its operands contiguous, so a correct extractor must leave the
/// statements scalar (or pay gather shuffles that the cycle model makes
/// unprofitable).
void gen_strided_gather(Rng& rng, std::ostringstream& os) {
    const int unroll = 1 << rng.uniform_int(1, 2);        // 2, 4
    const int points = unroll * rng.uniform_int(2, 4);    // <= 16
    // Pairwise coprime strides: lanes never re-align.
    const int s0 = 2, s1 = 3, s2 = 5;
    const int extent = s2 * (points - 1) + 3;
    os << "  input  x[" << extent << "] range(-1.0, 1.0);\n"
       << "  param  c[3] = { " << coeff_list(rng, 3) << " };\n"
       << "  output y[" << points << "];\n"
       << "  loop i = 0.." << points << " unroll " << unroll << " {\n"
       << "    y[i] = c[0] * x[" << s0 << " * i] + c[1] * x[" << s1
       << " * i + 1] + c[2] * x[" << s2 << " * i + 2];\n"
       << "  }\n";
}

/// SLP-hostile: neighbouring lanes pull from *different* arrays with
/// mismatched strides. The even/odd statements are shape-isomorphic but
/// their loads alternate a/b and stride 1/2 — a lane group mixing them
/// has no vectorizable memory access.
void gen_mixed_arrays(Rng& rng, std::ostringstream& os) {
    const int unroll = 1 << rng.uniform_int(0, 1);        // 1, 2
    const int pairs = unroll * rng.uniform_int(2, 5);     // <= 10
    const std::string w0 = coeff(rng);
    const std::string w1 = coeff(rng);
    os << "  input  a[" << (2 * pairs) << "] range(-1.0, 1.0);\n"
       << "  input  b[" << (2 * pairs) << "] range(-1.0, 1.0);\n"
       << "  output y[" << (2 * pairs) << "];\n"
       << "  loop i = 0.." << pairs << " unroll " << unroll << " {\n"
       << "    y[2 * i] = " << w0 << " * a[i] + " << w1 << " * b[2 * i];\n"
       << "    y[2 * i + 1] = " << w0 << " * b[i] + " << w1
       << " * a[2 * i + 1];\n"
       << "  }\n";
}

}  // namespace

GeneratedKernel generate_kernel_source(uint64_t seed,
                                       const GenOptions& options) {
    // Distinct stream names: a hostile kernel is not "the friendly
    // kernel, perturbed" — its draws are independent, so adding the
    // hostile batch never changes the friendly kernels' bytes.
    Rng rng(seed, options.slp_hostile ? "kernel_gen_hostile" : "kernel_gen");
    GeneratedKernel out;
    out.name = (options.slp_hostile ? "genh_" : "gen_") +
               std::to_string(seed);
    std::ostringstream os;
    os << "# generated " << (options.slp_hostile ? "SLP-hostile " : "")
       << "kernel (seed " << seed << ")\n"
       << "kernel " << out.name << " {\n"
       << range_annotation(rng);
    if (options.slp_hostile) {
        switch (rng.uniform_int(0, 1)) {
            case 0: gen_strided_gather(rng, os); break;
            default: gen_mixed_arrays(rng, os); break;
        }
    } else {
        switch (rng.uniform_int(0, 3)) {
            case 0: gen_reduction(rng, os); break;
            case 1: gen_stencil(rng, os); break;
            case 2: gen_dual_reduction(rng, os); break;
            default: gen_matmul(rng, os); break;
        }
    }
    os << "}\n";
    out.source = os.str();
    return out;
}

kernels::BenchmarkKernel generate_kernel(uint64_t seed,
                                         const GenOptions& options) {
    const GeneratedKernel gen = generate_kernel_source(seed, options);
    return compile_benchmark_source(gen.source,
                                    "<generated seed " +
                                        std::to_string(seed) + ">");
}

}  // namespace slpwlo::frontend
