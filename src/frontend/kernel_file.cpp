#include "frontend/kernel_file.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "frontend/lower_ast.hpp"
#include "ir/unroll.hpp"
#include "ir/verifier.hpp"
#include "kernels/kernel_registry.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::frontend {

namespace {

RangeMethod range_method_from_annotation(const std::string& spelling,
                                         int line, int column) {
    if (spelling.empty() || spelling == "auto") return RangeMethod::Auto;
    if (spelling == "interval") return RangeMethod::Interval;
    if (spelling == "simulation") return RangeMethod::Simulation;
    throw ParseError("unknown range method `" + spelling +
                         "` (expected auto, interval or simulation)",
                     line, column);
}

/// Re-throw a ParseError with the source name spliced into the position
/// prefix, so a failing corpus file reports `path:line:col: message`.
[[noreturn]] void rethrow_located(const ParseError& e,
                                  const std::string& source_name) {
    throw Error(source_name + ":" + std::to_string(e.line()) + ":" +
                std::to_string(e.column()) + ": " + e.what());
}

}  // namespace

std::string canonical_kernel_source(const std::string& source) {
    std::string out;
    out.reserve(source.size());
    size_t offset = 0;
    while (offset <= source.size()) {
        size_t end = source.find('\n', offset);
        if (end == std::string::npos) {
            if (offset == source.size()) break;
            end = source.size();
        }
        std::string line = source.substr(offset, end - offset);
        offset = end + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        // Keep only lines the kv container format would hand back: a line
        // that is blank (or nothing but a comment) after '#'-stripping
        // vanishes in a begin_kernel block, so it must not count here.
        std::string significant = line;
        const size_t comment = significant.find('#');
        if (comment != std::string::npos) significant.resize(comment);
        bool blank = true;
        for (const char c : significant) {
            if (c != ' ' && c != '\t') { blank = false; break; }
        }
        if (blank) continue;
        out += line;
        out += '\n';
    }
    return out;
}

kernels::BenchmarkKernel compile_benchmark_source(
    const std::string& source, const std::string& source_name) {
    try {
        const ast::KernelAst parsed = ast::parse(source);
        const RangeMethod method = range_method_from_annotation(
            parsed.range_method, parsed.range_line, parsed.range_column);
        Kernel kernel = unroll_kernel(lower_ast(parsed));
        verify_kernel(kernel);
        RangeOptions range_options;
        range_options.method = method;
        return kernels::BenchmarkKernel{kernel.name(), std::move(kernel),
                                        range_options};
    } catch (const ParseError& e) {
        rethrow_located(e, source_name);
    }
}

namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read kernel file `" + path + "`");
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

}  // namespace

kernels::BenchmarkKernel load_kernel_file(const std::string& path) {
    return compile_benchmark_source(read_file(path), path);
}

std::string register_kernel_source(const std::string& source,
                                   const std::string& source_name) {
    kernels::BenchmarkKernel bench =
        compile_benchmark_source(source, source_name);
    std::string name = bench.name;
    // Store the canonical form: manifests embed registry sources verbatim,
    // and only the comment-free form survives the kv container format
    // byte-for-byte (point fingerprints mix these bytes, so the planner
    // and a worker re-reading the manifest must agree exactly).
    kernels::KernelRegistry::instance().add(std::move(bench),
                                            canonical_kernel_source(source));
    return name;
}

std::string register_kernel_file(const std::string& path) {
    return register_kernel_source(read_file(path), path);
}

std::vector<std::string> load_kernel_corpus(const std::string& dir) {
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        throw Error("kernel corpus `" + dir + "` is not a directory");
    }
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".slp") {
            files.push_back(entry.path());
        }
    }
    if (ec) throw Error("cannot list kernel corpus `" + dir + "`");
    // Directory iteration order is filesystem-dependent; sort by filename
    // so registration order (and any name-clash error) is deterministic.
    std::sort(files.begin(), files.end());
    std::vector<std::string> names;
    names.reserve(files.size());
    for (const fs::path& file : files) {
        names.push_back(register_kernel_file(file.string()));
    }
    return names;
}

}  // namespace slpwlo::frontend
