#include "frontend/lexer.hpp"

#include <cctype>
#include <map>

#include "support/diagnostics.hpp"

namespace slpwlo {

std::string to_string(TokKind kind) {
    switch (kind) {
        case TokKind::Identifier: return "identifier";
        case TokKind::Number: return "number";
        case TokKind::KwKernel: return "'kernel'";
        case TokKind::KwInput: return "'input'";
        case TokKind::KwParam: return "'param'";
        case TokKind::KwOutput: return "'output'";
        case TokKind::KwBuffer: return "'buffer'";
        case TokKind::KwVar: return "'var'";
        case TokKind::KwLoop: return "'loop'";
        case TokKind::KwRange: return "'range'";
        case TokKind::KwUnroll: return "'unroll'";
        case TokKind::LBrace: return "'{'";
        case TokKind::RBrace: return "'}'";
        case TokKind::LBracket: return "'['";
        case TokKind::RBracket: return "']'";
        case TokKind::LParen: return "'('";
        case TokKind::RParen: return "')'";
        case TokKind::Comma: return "','";
        case TokKind::Semicolon: return "';'";
        case TokKind::Assign: return "'='";
        case TokKind::Plus: return "'+'";
        case TokKind::Minus: return "'-'";
        case TokKind::Star: return "'*'";
        case TokKind::Slash: return "'/'";
        case TokKind::DotDot: return "'..'";
        case TokKind::End: return "end of input";
    }
    return "<token>";
}

std::vector<Token> lex(const std::string& source) {
    static const std::map<std::string, TokKind> keywords{
        {"kernel", TokKind::KwKernel}, {"input", TokKind::KwInput},
        {"param", TokKind::KwParam},   {"output", TokKind::KwOutput},
        {"buffer", TokKind::KwBuffer}, {"var", TokKind::KwVar},
        {"loop", TokKind::KwLoop},     {"range", TokKind::KwRange},
        {"unroll", TokKind::KwUnroll},
    };

    std::vector<Token> tokens;
    int line = 1, column = 1;
    size_t i = 0;
    auto advance = [&](size_t count = 1) {
        for (size_t k = 0; k < count && i < source.size(); ++k, ++i) {
            if (source[i] == '\n') {
                line++;
                column = 1;
            } else {
                column++;
            }
        }
    };
    auto push = [&](TokKind kind, std::string text, double number = 0.0) {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.number = number;
        t.line = line;
        t.column = column;
        tokens.push_back(std::move(t));
    };

    while (i < source.size()) {
        const char c = source[i];
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            advance();
            continue;
        }
        if (c == '#' || (c == '/' && i + 1 < source.size() &&
                         source[i + 1] == '/')) {
            while (i < source.size() && source[i] != '\n') advance();
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
            size_t start = i;
            while (i < source.size() &&
                   (std::isalnum(static_cast<unsigned char>(source[i])) != 0 ||
                    source[i] == '_')) {
                advance();
            }
            const std::string word = source.substr(start, i - start);
            const auto kw = keywords.find(word);
            if (kw != keywords.end()) {
                push(kw->second, word);
            } else {
                push(TokKind::Identifier, word);
            }
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            size_t start = i;
            bool is_real = false;
            while (i < source.size()) {
                const char d = source[i];
                if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
                    advance();
                } else if (d == '.' && i + 1 < source.size() &&
                           source[i + 1] != '.') {
                    // '.' followed by another '.' is the range operator.
                    is_real = true;
                    advance();
                } else if ((d == 'e' || d == 'E') && i + 1 < source.size()) {
                    is_real = true;
                    advance();
                    if (i < source.size() &&
                        (source[i] == '+' || source[i] == '-')) {
                        advance();
                    }
                } else {
                    break;
                }
            }
            const std::string text = source.substr(start, i - start);
            push(TokKind::Number, text, std::stod(text));
            (void)is_real;
            continue;
        }
        switch (c) {
            case '{': push(TokKind::LBrace, "{"); advance(); break;
            case '}': push(TokKind::RBrace, "}"); advance(); break;
            case '[': push(TokKind::LBracket, "["); advance(); break;
            case ']': push(TokKind::RBracket, "]"); advance(); break;
            case '(': push(TokKind::LParen, "("); advance(); break;
            case ')': push(TokKind::RParen, ")"); advance(); break;
            case ',': push(TokKind::Comma, ","); advance(); break;
            case ';': push(TokKind::Semicolon, ";"); advance(); break;
            case '=': push(TokKind::Assign, "="); advance(); break;
            case '+': push(TokKind::Plus, "+"); advance(); break;
            case '-': push(TokKind::Minus, "-"); advance(); break;
            case '*': push(TokKind::Star, "*"); advance(); break;
            case '/': push(TokKind::Slash, "/"); advance(); break;
            case '.':
                if (i + 1 < source.size() && source[i + 1] == '.') {
                    push(TokKind::DotDot, "..");
                    advance(2);
                    break;
                }
                throw ParseError("stray '.'", line, column);
            default:
                throw ParseError(std::string("illegal character '") + c + "'",
                                 line, column);
        }
    }
    push(TokKind::End, "");
    return tokens;
}

}  // namespace slpwlo
