#include "core/scaling_optim.hpp"

#include <algorithm>
#include <set>

#include "accuracy/noise_source.hpp"
#include "slp/packing_cost.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

ScalingStats& ScalingStats::operator+=(const ScalingStats& other) {
    reuses_examined += other.reuses_examined;
    already_uniform += other.already_uniform;
    equalized += other.equalized;
    reverted += other.reverted;
    skipped_negative += other.skipped_negative;
    skipped_shared_node += other.skipped_shared_node;
    return *this;
}

std::vector<SuperwordReuse> find_superword_reuses(
    const PackedView& view, const std::vector<SimdGroup>& groups) {
    std::vector<SuperwordReuse> reuses;
    for (size_t consumer = 0; consumer < groups.size(); ++consumer) {
        const SimdGroup& g2 = groups[consumer];
        const int slots = view.kernel().op(g2.lanes.front()).num_args();
        for (int slot = 0; slot < slots; ++slot) {
            const std::vector<OpId> defs =
                operand_defs(view, g2.lanes, slot);
            if (defs.empty()) continue;
            for (size_t producer = 0; producer < groups.size(); ++producer) {
                if (producer == consumer) continue;
                if (groups[producer].lanes == defs) {
                    reuses.push_back(SuperwordReuse{
                        static_cast<int>(producer), static_cast<int>(consumer),
                        slot});
                }
            }
        }
    }
    return reuses;
}

std::vector<int> scaling_amounts(const PackedView& view,
                                 const std::vector<SimdGroup>& groups,
                                 const SuperwordReuse& reuse,
                                 const FixedPointSpec& spec) {
    const SimdGroup& g1 = groups[static_cast<size_t>(reuse.producer)];
    const SimdGroup& g2 = groups[static_cast<size_t>(reuse.consumer)];
    SLPWLO_ASSERT(g1.lanes.size() == g2.lanes.size(),
                  "superword reuse between groups of different widths");
    std::vector<int> amounts(g1.lanes.size());
    for (size_t e = 0; e < g1.lanes.size(); ++e) {
        const int src_fwl = spec.result_format(g1.lanes[e]).fwl;
        const int dst_fwl = spec.result_format(g2.lanes[e]).fwl;
        amounts[e] = src_fwl - dst_fwl;
    }
    (void)view;
    return amounts;
}

namespace {

/// Shared core of the equalization move: reduce per-lane FWLs (keeping WL)
/// so all scaling amounts become the common maximum; revert on violation.
/// `nodes[e]` is the format node whose FWL shrinks by (max - amounts[e]).
void equalize(const std::vector<NodeRef>& nodes,
              const std::vector<int>& amounts, FixedPointSpec& spec,
              EvalSession& eval, double accuracy_db, ScalingStats& stats) {
    // Distinct-node requirement: per-lane reductions differ, so lanes
    // sharing one format node (e.g. one array) cannot be adjusted.
    std::set<std::pair<int, int32_t>> distinct;
    for (const NodeRef node : nodes) {
        if (!distinct.insert({static_cast<int>(node.kind), node.id}).second) {
            stats.skipped_shared_node++;
            return;
        }
    }
    const int m = *std::max_element(amounts.begin(), amounts.end());
    const auto cp = spec.checkpoint();
    for (size_t e = 0; e < nodes.size(); ++e) {
        const int reduction = m - amounts[e];
        if (reduction > 0) {
            spec.set_format(nodes[e],
                            spec.format(nodes[e]).with_fwl_reduced_by(reduction));
        }
    }
    if (eval.violates(accuracy_db)) {
        spec.revert(cp);
        stats.reverted++;
    } else {
        spec.commit(cp);
        stats.equalized++;
    }
}

}  // namespace

ScalingStats optimize_scalings(const PackedView& view,
                               const std::vector<SimdGroup>& groups,
                               FixedPointSpec& spec,
                               const AccuracyEvaluator& evaluator,
                               double accuracy_db) {
    ScalingStats stats;

    // One incremental session for all equalization probes: each probe
    // changes a handful of lane nodes, so the journal-tracking session
    // re-evaluates in O(lanes) instead of O(#ops).
    const std::unique_ptr<EvalSession> eval = evaluator.open_session(spec);

    // A multiply group's own result quantization (full product width down
    // to the result format) is a per-lane scaling too: unequal amounts
    // break the vector shift exactly as in Fig. 2. Equalize by reducing
    // the result FWLs (the same move as the paper's, applied to the
    // group's own output superword).
    const auto def_nodes = compute_var_def_nodes(view.kernel());
    for (const SimdGroup& group : groups) {
        if (view.kernel().op(group.lanes.front()).kind != OpKind::Mul) {
            continue;
        }
        stats.reuses_examined++;
        std::vector<int> amounts;
        std::vector<NodeRef> nodes;
        for (const OpId lane : group.lanes) {
            const Op& op = view.kernel().op(lane);
            int full = 0;
            for (int a = 0; a < 2; ++a) {
                const NodeRef operand_node = def_nodes[op.args[a].index()];
                full += spec.format(operand_node).fwl;
            }
            nodes.push_back(spec.node_of(lane));
            amounts.push_back(full - spec.format(nodes.back()).fwl);
        }
        if (std::all_of(amounts.begin(), amounts.end(),
                        [&](int s) { return s == amounts[0]; })) {
            stats.already_uniform++;
            continue;
        }
        if (!std::all_of(amounts.begin(), amounts.end(),
                         [](int s) { return s > 0; })) {
            stats.skipped_negative++;
            continue;
        }
        equalize(nodes, amounts, spec, *eval, accuracy_db, stats);
    }

    for (const SuperwordReuse& reuse : find_superword_reuses(view, groups)) {
        stats.reuses_examined++;
        const std::vector<int> amounts =
            scaling_amounts(view, groups, reuse, spec);

        if (std::all_of(amounts.begin(), amounts.end(),
                        [&](int s) { return s == amounts[0]; })) {
            stats.already_uniform++;
            continue;
        }
        if (!std::all_of(amounts.begin(), amounts.end(),
                         [](int s) { return s > 0; })) {
            // The paper only handles the all-right-shift case.
            stats.skipped_negative++;
            continue;
        }

        // SPEC.save g1; reduce FWL of each producer lane by (m - S[e]);
        // revert on constraint violation (Fig. 1b lines 7-14).
        const SimdGroup& g1 = groups[static_cast<size_t>(reuse.producer)];
        std::vector<NodeRef> nodes;
        nodes.reserve(g1.lanes.size());
        for (const OpId lane : g1.lanes) {
            nodes.push_back(spec.node_of(lane));
        }
        equalize(nodes, amounts, spec, *eval, accuracy_db, stats);
    }
    return stats;
}

}  // namespace slpwlo
