// The WLO-First baseline flow (Fig. 5): float-to-fixed-point conversion
// with Tabu-search WLO performed *first* and independently, followed by
// plain SLP extraction that must live with whatever word lengths WLO chose.
//
// This is the decoupled state of the art the paper compares against
// (Menard'06 cost model + Nguyen'11 Tabu WLO + Liu'12 SLP). There is no
// accuracy awareness in the extractor and no scaling optimization — the
// mismatches WLO created stay in the generated code as per-lane scalings
// and pack/unpack overhead.
#pragma once

#include "core/slp_aware_wlo.hpp"
#include "core/tabu_wlo.hpp"

namespace slpwlo {

struct WloFirstOptions {
    double accuracy_db = -40.0;
    TabuOptions tabu;
    SlpOptions slp;
};

struct WloFirstResult {
    std::vector<BlockGroups> block_groups;
    TabuStats tabu_stats;
    SlpStats slp_stats;

    int group_count() const;
};

WloFirstResult run_wlo_first(const Kernel& kernel, FixedPointSpec& spec,
                             const AccuracyEvaluator& evaluator,
                             const TargetModel& target,
                             const WloFirstOptions& options);

/// Stage 2 of the WLO-First flow in isolation: plain SLP extraction over
/// all blocks in priority order (shared by run_wlo_first and the
/// FlowEngine's plain-slp pass). When `views` is non-null, the final
/// packed view of every visited block is retained there for downstream
/// passes (scaling optimization).
std::vector<BlockGroups> extract_plain_slp_blocks(
    const Kernel& kernel, const TargetModel& target,
    const FixedPointSpec& spec, const SlpOptions& options,
    SlpStats* stats = nullptr,
    std::vector<std::pair<BlockId, PackedView>>* views = nullptr);

}  // namespace slpwlo
