// The WLO-First baseline flow (Fig. 5): float-to-fixed-point conversion
// with Tabu-search WLO performed *first* and independently, followed by
// plain SLP extraction that must live with whatever word lengths WLO chose.
//
// This is the decoupled state of the art the paper compares against
// (Menard'06 cost model + Nguyen'11 Tabu WLO + Liu'12 SLP). There is no
// accuracy awareness in the extractor and no scaling optimization — the
// mismatches WLO created stay in the generated code as per-lane scalings
// and pack/unpack overhead.
#pragma once

#include "core/slp_aware_wlo.hpp"
#include "core/tabu_wlo.hpp"

namespace slpwlo {

struct WloFirstOptions {
    double accuracy_db = -40.0;
    TabuOptions tabu;
    SlpOptions slp;
};

struct WloFirstResult {
    std::vector<BlockGroups> block_groups;
    TabuStats tabu_stats;
    SlpStats slp_stats;

    int group_count() const;
};

WloFirstResult run_wlo_first(const Kernel& kernel, FixedPointSpec& spec,
                             const AccuracyEvaluator& evaluator,
                             const TargetModel& target,
                             const WloFirstOptions& options);

}  // namespace slpwlo
