#include "core/slp_aware_wlo.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace slpwlo {

int WloSlpResult::group_count() const {
    int count = 0;
    for (const BlockGroups& bg : block_groups) {
        count += static_cast<int>(bg.groups.size());
    }
    return count;
}

std::vector<BlockId> blocks_by_priority(const Kernel& kernel) {
    std::vector<BlockId> blocks = kernel.blocks_in_order();
    std::stable_sort(blocks.begin(), blocks.end(),
                     [&kernel](BlockId a, BlockId b) {
                         return kernel.block_frequency(a) >
                                kernel.block_frequency(b);
                     });
    return blocks;
}

WloSlpResult run_slp_aware_wlo(const Kernel& kernel, FixedPointSpec& spec,
                               const AccuracyEvaluator& evaluator,
                               const TargetModel& target,
                               const WloSlpOptions& options) {
    SLPWLO_ASSERT(&spec.kernel() == &kernel,
                  "spec belongs to a different kernel");

    // Fig. 1a lines 1-3: initialize every node to the maximum supported WL.
    for (const NodeRef node : spec.nodes()) {
        spec.set_wl(node, target.max_wl());
    }
    SLPWLO_CHECK(
        !evaluator.violates(spec, options.accuracy_db),
        "accuracy constraint " + std::to_string(options.accuracy_db) +
            " dB is infeasible even at maximum word lengths on target " +
            target.name);

    AccuracySlpConfig slp_config;
    slp_config.accuracy_db = options.accuracy_db;
    slp_config.accuracy_conflicts = options.accuracy_conflicts;
    slp_config.strict_feasibility = options.strict_feasibility;
    slp_config.slp = options.slp;

    WloSlpResult result;
    slp_config.exact_selection = options.exact_selection;
    slp_config.solver_budget = options.solver_budget;
    if (options.exact_selection) {
        slp_config.solver_stats = &result.solver_stats;
    }
    // Fig. 1a line 4: visit blocks in priority order so the accuracy
    // budget is spent on the hottest code first.
    for (const BlockId block : blocks_by_priority(kernel)) {
        if (kernel.block(block).ops.size() < 2) continue;
        PackedView view(kernel, block);
        std::vector<SimdGroup> groups = accuracy_aware_slp(
            view, spec, evaluator, target, slp_config, &result.slp_stats);
        if (options.scaling_optim && !groups.empty()) {
            result.scaling_stats += optimize_scalings(
                view, groups, spec, evaluator, options.accuracy_db);
        }
        if (!groups.empty()) {
            result.block_groups.push_back(
                BlockGroups{block, std::move(groups)});
        }
    }

    SLPWLO_ASSERT(spec.open_checkpoints() == 0,
                  "unbalanced spec checkpoints after WLO");
    return result;
}

}  // namespace slpwlo
