// Menard-style word-length cost model for the WLO-First baseline.
//
// The baseline's Tabu WLO minimizes an execution-time *proxy*: every
// operation costs its WL-relative instruction share (32-bit = 1, a WL that
// fits a 2x16 SIMD slot = 0.5, a 4x8 slot = 0.25), weighted by execution
// frequency. This encodes the assumption the paper criticizes — that any
// operation narrowed to a SIMD-capable WL will eventually be executed
// N-per-instruction by a later, independent SLP pass, with no knowledge of
// grouping feasibility or packing overhead (Section II.B).
//
// open_session() returns an incremental handle for the Tabu move loop: it
// caches one cost term per weighted op and tracks the spec's change journal,
// so a single-node move recomputes only the ops reading that node's format.
// The total is re-summed over the cached terms in op order — bit-identical
// to cost().
#pragma once

#include <cstdint>
#include <memory>

#include "fixpoint/spec.hpp"
#include "target/target_model.hpp"

namespace slpwlo {

class WlCostModel;

/// Incremental cost handle bound to one (model, spec) pair. The spec may be
/// mutated freely between cost() calls; the session resynchronizes from the
/// spec's change journal.
class WlCostSession {
public:
    WlCostSession(const WlCostModel& model, FixedPointSpec& spec);

    /// Frequency-weighted cost of the bound spec in its current state;
    /// bit-identical to model.cost(spec).
    double cost();

    /// Cost with `node` moved to word length `wl`, the spec left unchanged
    /// on return.
    double preview_move(NodeRef node, int wl);

    /// Bracket a single-node probe (same contract as EvalSession's
    /// begin_move/end_move): snapshot the node's cost terms so the caller's
    /// restore costs a copy instead of a second refresh pass.
    void begin_move(NodeRef node);
    void end_move();

private:
    void sync();
    void refresh(size_t i);

    const WlCostModel* model_;
    FixedPointSpec* spec_;
    std::vector<double> terms_;
    std::vector<double> saved_terms_;  ///< begin_move() snapshot scratch
    const std::vector<uint32_t>* move_ops_ = nullptr;
    size_t cursor_ = 0;
};

class WlCostModel {
public:
    WlCostModel(const Kernel& kernel, const TargetModel& target);

    /// Frequency-weighted relative execution-time proxy of the spec.
    double cost(const FixedPointSpec& spec) const;

    /// Open an incremental session bound to `spec` (see WlCostSession).
    std::unique_ptr<WlCostSession> open_session(FixedPointSpec& spec) const {
        return std::make_unique<WlCostSession>(*this, spec);
    }

    /// Cost when every node sits at the target's maximum WL (the upper
    /// bound WLO starts from).
    double max_cost() const { return max_cost_; }

private:
    friend class WlCostSession;

    struct WeightedOp {
        OpId op;
        OpKind kind;
        double weight;
    };

    /// Held by value: callers routinely pass `targets::xentium()`-style
    /// temporaries whose lifetime ends with the constructor call.
    TargetModel target_;
    const Kernel* kernel_;
    std::vector<WeightedOp> ops_;
    /// Per-node lists of indices into ops_ whose result format the node
    /// carries: vars first, then arrays.
    std::vector<std::vector<uint32_t>> node_ops_;
    double max_cost_ = 0.0;
};

}  // namespace slpwlo
