// Menard-style word-length cost model for the WLO-First baseline.
//
// The baseline's Tabu WLO minimizes an execution-time *proxy*: every
// operation costs its WL-relative instruction share (32-bit = 1, a WL that
// fits a 2x16 SIMD slot = 0.5, a 4x8 slot = 0.25), weighted by execution
// frequency. This encodes the assumption the paper criticizes — that any
// operation narrowed to a SIMD-capable WL will eventually be executed
// N-per-instruction by a later, independent SLP pass, with no knowledge of
// grouping feasibility or packing overhead (Section II.B).
#pragma once

#include "fixpoint/spec.hpp"
#include "target/target_model.hpp"

namespace slpwlo {

class WlCostModel {
public:
    WlCostModel(const Kernel& kernel, const TargetModel& target);

    /// Frequency-weighted relative execution-time proxy of the spec.
    double cost(const FixedPointSpec& spec) const;

    /// Cost when every node sits at the target's maximum WL (the upper
    /// bound WLO starts from).
    double max_cost() const { return max_cost_; }

private:
    struct WeightedOp {
        OpId op;
        OpKind kind;
        double weight;
    };

    /// Held by value: callers routinely pass `targets::xentium()`-style
    /// temporaries whose lifetime ends with the constructor call.
    TargetModel target_;
    std::vector<WeightedOp> ops_;
    double max_cost_ = 0.0;
};

}  // namespace slpwlo
