#include "core/wlo_first.hpp"

namespace slpwlo {

int WloFirstResult::group_count() const {
    int count = 0;
    for (const BlockGroups& bg : block_groups) {
        count += static_cast<int>(bg.groups.size());
    }
    return count;
}

std::vector<BlockGroups> extract_plain_slp_blocks(
    const Kernel& kernel, const TargetModel& target,
    const FixedPointSpec& spec, const SlpOptions& options, SlpStats* stats,
    std::vector<std::pair<BlockId, PackedView>>* views) {
    std::vector<BlockGroups> block_groups;
    for (const BlockId block : blocks_by_priority(kernel)) {
        if (kernel.block(block).ops.size() < 2) continue;
        PackedView view(kernel, block);
        std::vector<SimdGroup> groups =
            extract_slp_plain(view, target, spec, options, stats);
        if (views != nullptr) views->emplace_back(block, std::move(view));
        if (!groups.empty()) {
            block_groups.push_back(BlockGroups{block, std::move(groups)});
        }
    }
    return block_groups;
}

WloFirstResult run_wlo_first(const Kernel& kernel, FixedPointSpec& spec,
                             const AccuracyEvaluator& evaluator,
                             const TargetModel& target,
                             const WloFirstOptions& options) {
    WloFirstResult result;

    // Stage 1: word-length optimization, SLP-blind.
    result.tabu_stats = run_tabu_wlo(spec, evaluator, target,
                                     options.accuracy_db, options.tabu);

    // Stage 2: plain SLP extraction on the fixed word lengths.
    result.block_groups = extract_plain_slp_blocks(
        kernel, target, spec, options.slp, &result.slp_stats);
    return result;
}

}  // namespace slpwlo
