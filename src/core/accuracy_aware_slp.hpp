// Accuracy-aware SLP extraction (Fig. 1c) — the first half of the paper's
// contribution.
//
// On top of the structural Liu-style extraction (src/slp), this version:
//  * eliminates candidates that cannot be implemented as SIMD without
//    violating the accuracy constraint, even with every other node at its
//    current (widest) WL (lines 6-12);
//  * declares two candidates in conflict when their combined WL reductions
//    violate the constraint (lines 14-25) — they cannot coexist;
//  * commits equation (1) on every selection: all elements of a selected
//    group drop to the largest WL m with m * Nelem <= SIMD width (SETMAXWL);
//  * optionally (strict_feasibility, on by default) re-checks the
//    constraint on top of all previously committed selections before
//    accepting a group. The paper's pairwise conflicts are necessary but
//    not sufficient when many small noise contributions accumulate; see
//    DESIGN.md "Key design decisions".
#pragma once

#include "accuracy/evaluator.hpp"
#include "slp/plain_extractor.hpp"
#include "solver/pack_select.hpp"

namespace slpwlo {

struct AccuracySlpConfig {
    /// Accuracy constraint: maximum tolerable output noise power in dB.
    double accuracy_db = -40.0;
    /// Enable the accuracy-conflict detection of Fig. 1c lines 14-25.
    bool accuracy_conflicts = true;
    /// Re-check feasibility at selection time (see header comment).
    bool strict_feasibility = true;
    SlpOptions slp;
    /// `SLP-Optimal`: replace the greedy per-round selection with the
    /// exact solver (solver/pack_select.hpp) under `solver_budget`,
    /// seeded with the greedy answer. Cumulative accuracy feasibility is
    /// enforced inside the search through the same equation-(1)
    /// machinery the greedy hooks use.
    bool exact_selection = false;
    solver::SolveBudget solver_budget;
    /// When non-null, exact-selection statistics accumulate here (one
    /// solve per round).
    solver::PackSelectStats* solver_stats = nullptr;
};

/// Equation (1): reduce the WL of every node carrying a lane of `lanes` to
/// the element width a group of `group_width` lanes executes at once
/// realized (for a virtual width, the realization configuration's element
/// width; never increasing a WL that is already smaller).
void set_group_max_wl(FixedPointSpec& spec, const std::vector<OpId>& lanes,
                      int group_width, const TargetModel& target);

/// Run accuracy-aware extraction on one block view. `spec` is mutated: the
/// selected groups' nodes end up at their equation-(1) word lengths.
std::vector<SimdGroup> accuracy_aware_slp(PackedView& view,
                                          FixedPointSpec& spec,
                                          const AccuracyEvaluator& evaluator,
                                          const TargetModel& target,
                                          const AccuracySlpConfig& config,
                                          SlpStats* stats = nullptr);

}  // namespace slpwlo
