// The SLP-aware word-length optimization algorithm (Fig. 1a) — the paper's
// headline contribution, joining float-to-fixed-point WLO with SLP
// extraction:
//
//   1. every node starts at the maximum WL supported by the target
//      (minimum SLP, maximum accuracy);
//   2. basic blocks are visited in priority order (their contribution to
//      execution time — we use static frequency weight, equivalent to
//      profiling for these single-hot-loop kernels);
//   3. per block, accuracy-aware SLP extraction (Fig. 1c) runs in rounds,
//      each selection committing equation (1) WL reductions, rewriting the
//      packed view to allow group widening;
//   4. finally, scaling optimization (Fig. 1b) equalizes per-lane shift
//      amounts across superword reuses.
//
// Output: the jointly determined fixed-point specification (spec is mutated
// in place) and the selected SIMD groups per block.
#pragma once

#include "core/accuracy_aware_slp.hpp"
#include "core/scaling_optim.hpp"

namespace slpwlo {

struct WloSlpOptions {
    /// Accuracy constraint in dB (maximum output noise power).
    double accuracy_db = -40.0;
    /// Run Fig. 1b after extraction (off for ablation A1).
    bool scaling_optim = true;
    /// Fig. 1c accuracy-conflict detection (off for ablation A2).
    bool accuracy_conflicts = true;
    /// Strict per-selection feasibility recheck (off for ablation A2).
    bool strict_feasibility = true;
    SlpOptions slp;
    /// `SLP-Optimal`: exact per-round pack selection (see
    /// AccuracySlpConfig::exact_selection).
    bool exact_selection = false;
    solver::SolveBudget solver_budget;
};

struct BlockGroups {
    BlockId block;
    std::vector<SimdGroup> groups;
};

struct WloSlpResult {
    std::vector<BlockGroups> block_groups;
    SlpStats slp_stats;
    ScalingStats scaling_stats;
    /// Exact-selection statistics, populated when
    /// WloSlpOptions::exact_selection is on (zero solves otherwise).
    solver::PackSelectStats solver_stats;

    /// Total number of SIMD groups selected.
    int group_count() const;
};

/// Blocks ordered by descending execution-frequency priority (ties by id).
std::vector<BlockId> blocks_by_priority(const Kernel& kernel);

WloSlpResult run_slp_aware_wlo(const Kernel& kernel, FixedPointSpec& spec,
                               const AccuracyEvaluator& evaluator,
                               const TargetModel& target,
                               const WloSlpOptions& options);

}  // namespace slpwlo
