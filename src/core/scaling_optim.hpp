// SLP-aware, accuracy-aware scaling optimization (Fig. 1b) — the second
// half of the paper's contribution.
//
// When a superword produced by group g1 is consumed by group g2, each lane
// may require a different scaling (right-shift) amount, determined by the
// per-lane FWL differences. Unequal amounts break the superword reuse:
// the vector must be unpacked, shifted per lane, and repacked (Fig. 2),
// because embedded SIMD ISAs only shift all lanes by one common amount.
//
// The optimization equalizes the amounts by *reducing* the FWL of the
// producer lanes (growing their IWL, keeping WL constant) until every lane
// shifts by the same maximum amount — accepted only while the accuracy
// constraint still holds (save/revert semantics).
#pragma once

#include "accuracy/evaluator.hpp"
#include "slp/packed_view.hpp"

namespace slpwlo {

struct ScalingStats {
    int reuses_examined = 0;
    int already_uniform = 0;   ///< amounts equal, nothing to do
    int equalized = 0;         ///< FWLs adjusted and kept
    int reverted = 0;          ///< adjustment violated the constraint
    int skipped_negative = 0;  ///< some lane needs a left shift (not handled,
                               ///< as in the paper: only all-positive cases)
    int skipped_shared_node = 0;  ///< producer lanes share one format node

    ScalingStats& operator+=(const ScalingStats& other);
};

/// One superword reuse: group `producer`'s result feeds operand `slot` of
/// group `consumer`, lane by lane, in order.
struct SuperwordReuse {
    int producer = 0;  ///< index into the group list
    int consumer = 0;
    int slot = 0;
};

/// All lane-exact superword reuses among `groups` (the view provides
/// def-use information).
std::vector<SuperwordReuse> find_superword_reuses(
    const PackedView& view, const std::vector<SimdGroup>& groups);

/// Fig. 1b over all superword reuses among `groups`.
ScalingStats optimize_scalings(const PackedView& view,
                               const std::vector<SimdGroup>& groups,
                               FixedPointSpec& spec,
                               const AccuracyEvaluator& evaluator,
                               double accuracy_db);

/// Per-lane scaling amounts of a reuse: FWL(producer lane) minus
/// FWL(consumer lane result node), the paper's S list.
std::vector<int> scaling_amounts(const PackedView& view,
                                 const std::vector<SimdGroup>& groups,
                                 const SuperwordReuse& reuse,
                                 const FixedPointSpec& spec);

}  // namespace slpwlo
