// Tabu-search word-length optimization (the Nguyen'11 algorithm used as the
// paper's WLO baseline, Section V.A).
//
// State: one WL per node, drawn from the target's supported scalar set.
// Moves: change a single node's WL to an adjacent supported value.
// The search starts from the all-maximum (feasible) spec, walks the
// neighborhood guided by the WlCostModel with an infeasibility penalty,
// keeps a tabu list on (node, previous WL) reversals with aspiration, and
// returns the best feasible spec found.
#pragma once

#include "accuracy/evaluator.hpp"
#include "core/wl_cost_model.hpp"

namespace slpwlo {

struct TabuOptions {
    int max_iterations = 250;
    /// Iterations a reversal move stays forbidden.
    int tenure = 8;
    /// Stop after this many non-improving iterations.
    int stagnation_limit = 60;
    /// Cost penalty per dB of constraint violation (guides the search back
    /// to feasibility while allowing it to pass through infeasible specs).
    double infeasibility_penalty = 0.35;
};

struct TabuStats {
    int iterations = 0;
    int improvements = 0;
    double initial_cost = 0.0;
    double best_cost = 0.0;
    bool feasible = false;
};

/// Optimize `spec` in place (all nodes are first reset to the maximum WL).
TabuStats run_tabu_wlo(FixedPointSpec& spec, const AccuracyEvaluator& evaluator,
                       const TargetModel& target, double accuracy_db,
                       const TabuOptions& options = {});

}  // namespace slpwlo
