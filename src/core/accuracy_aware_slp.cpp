#include "core/accuracy_aware_slp.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace slpwlo {

void set_group_max_wl(FixedPointSpec& spec, const std::vector<OpId>& lanes,
                      int group_width, const TargetModel& target) {
    // A virtual-width group commits the WL of its *realization*
    // configuration — the element width its lanes will execute at once
    // the group has grown into an implementable size.
    const auto m = target.realized_element_wl(group_width);
    SLPWLO_ASSERT(m.has_value(),
                  "set_group_max_wl on an unrealizable group size");
    for (const OpId lane : lanes) {
        const NodeRef node = spec.node_of(lane);
        const int wl = std::min(spec.format(node).wl(), *m);
        spec.set_wl(node, wl);
    }
}

std::vector<SimdGroup> accuracy_aware_slp(PackedView& view,
                                          FixedPointSpec& spec,
                                          const AccuracyEvaluator& evaluator,
                                          const TargetModel& target,
                                          const AccuracySlpConfig& config,
                                          SlpStats* stats) {
    const double constraint = config.accuracy_db;

    // One incremental session for the whole extraction: the hooks probe
    // small WL perturbations thousands of times, and the journal-tracking
    // session re-evaluates each probe in O(changed nodes).
    const std::unique_ptr<EvalSession> eval = evaluator.open_session(spec);

    auto apply_eq1 = [&](const Candidate& c) {
        const std::vector<OpId> lanes = fused_lanes(view, c);
        set_group_max_wl(spec, lanes, static_cast<int>(lanes.size()), target);
    };

    SlpHooks hooks;
    // Fig. 1c lines 6-12: a candidate whose own WL reduction (with all
    // other nodes untouched) violates the constraint can never be
    // implemented as a SIMD instruction.
    hooks.candidate_valid = [&](const Candidate& c) {
        const auto cp = spec.checkpoint();
        apply_eq1(c);
        const bool ok = !eval->violates(constraint);
        spec.revert(cp);
        return ok;
    };
    // Fig. 1c lines 14-25: candidates that cannot coexist are in conflict.
    if (config.accuracy_conflicts) {
        hooks.extra_conflict = [&](const Candidate& ci, const Candidate& cj) {
            const auto cp = spec.checkpoint();
            apply_eq1(ci);
            apply_eq1(cj);
            const bool violates = eval->violates(constraint);
            spec.revert(cp);
            return violates;
        };
    }
    // Fig. 1c line 34 (SETMAXWL on selection), plus the strict feasibility
    // re-check on top of everything committed so far.
    hooks.try_select = [&](const Candidate& c) {
        const auto cp = spec.checkpoint();
        apply_eq1(c);
        if (config.strict_feasibility && eval->violates(constraint)) {
            spec.revert(cp);
            return false;
        }
        spec.commit(cp);
        return true;
    };

    // `SLP-Optimal`: exact per-round selection. fix/unfix bracket the
    // equation-(1) commitment revertibly for the branch-and-bound search;
    // the winning selection is then replayed through the regular selection
    // hook. Noise is monotone in every WL, so a set that was feasible
    // inside the search is feasible at every replay prefix — the replay
    // cannot veto.
    std::vector<FixedPointSpec::Checkpoint> fix_stack;
    if (config.exact_selection) {
        hooks.select_round = [&](std::vector<Candidate> candidates,
                                 const ConflictSet& conflicts, int* rejected) {
            solver::PackSelectOptions options;
            options.benefit_mode = config.slp.benefit_mode;
            options.min_benefit = config.slp.min_benefit;
            options.budget = config.solver_budget;
            const solver::PackFix fix = [&](const Candidate& c) {
                const auto cp = spec.checkpoint();
                apply_eq1(c);
                if (config.strict_feasibility && eval->violates(constraint)) {
                    spec.revert(cp);
                    return false;
                }
                fix_stack.push_back(cp);
                return true;
            };
            const solver::PackUnfix unfix = [&](const Candidate&) {
                SLPWLO_ASSERT(!fix_stack.empty(),
                              "solver unfix without a matching fix");
                spec.revert(fix_stack.back());
                fix_stack.pop_back();
            };
            const solver::PackSelectResult result =
                solver::select_packs_exact(view, candidates, conflicts,
                                           target, options, fix, unfix,
                                           rejected);
            if (config.solver_stats != nullptr) {
                config.solver_stats->nodes += result.solve.nodes;
                config.solver_stats->solves++;
                config.solver_stats->proven_optimal &=
                    result.solve.proven_optimal;
                config.solver_stats->heuristic_objective +=
                    result.greedy_objective;
                config.solver_stats->best_objective +=
                    result.solve.best_objective;
            }
            for (const Candidate& c : result.selected) {
                SLPWLO_CHECK(hooks.try_select(c),
                             "exact selection failed its feasibility replay");
            }
            return result.selected;
        };
    }

    // Stranded-load demotion. Greedy selection can commit a load-group
    // widening (and its equation-(1) WL drop on the arrays) before the
    // consuming arithmetic widening gets rejected by the cumulative
    // accuracy check; the narrow load vectors would then feed wider
    // consumers through expensive lane traffic for no gain. At the end of
    // each round, unselect load groups no surviving candidate consumes as
    // a superword and replay the round's WL commitments without them.
    FixedPointSpec::Checkpoint round_cp = 0;
    bool round_open = false;
    hooks.round_begin = [&] {
        if (round_open) spec.commit(round_cp);
        round_cp = spec.checkpoint();
        round_open = true;
    };
    hooks.round_finish = [&](std::vector<Candidate> selection) {
        auto consumed_as_superword = [&](const Candidate& load) {
            const std::vector<OpId> lanes = fused_lanes(view, load);
            const std::vector<OpId> reversed(lanes.rbegin(), lanes.rend());
            for (const Candidate& s : selection) {
                if (s == load) continue;
                const std::vector<OpId> sl = fused_lanes(view, s);
                const int slots = view.kernel().op(sl.front()).num_args();
                for (int slot = 0; slot < slots; ++slot) {
                    const std::vector<OpId> defs =
                        operand_defs(view, sl, slot);
                    if (defs == lanes || defs == reversed) return true;
                }
            }
            return false;
        };

        std::vector<Candidate> survivors;
        bool demoted = false;
        for (const Candidate& c : selection) {
            if (view.kind(c.nodes.front()) == OpKind::Load &&
                !consumed_as_superword(c)) {
                demoted = true;
                continue;
            }
            survivors.push_back(c);
        }
        if (!round_open) return survivors;
        if (!demoted) {
            spec.commit(round_cp);
            round_open = false;
            return survivors;
        }
        // Replay: undo every WL commitment of the round, then re-apply
        // equation (1) for the survivors under the same feasibility rule.
        spec.revert(round_cp);
        round_open = false;
        std::vector<Candidate> confirmed;
        for (const Candidate& c : survivors) {
            const auto cp = spec.checkpoint();
            apply_eq1(c);
            if (config.strict_feasibility && eval->violates(constraint)) {
                spec.revert(cp);
                continue;
            }
            spec.commit(cp);
            confirmed.push_back(c);
        }
        return confirmed;
    };

    std::vector<SimdGroup> groups =
        extract_slp(view, target, config.slp, hooks, stats);
    if (round_open) spec.commit(round_cp);
    return groups;
}

}  // namespace slpwlo
