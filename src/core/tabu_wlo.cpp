#include "core/tabu_wlo.hpp"

#include <algorithm>
#include <map>

#include "support/diagnostics.hpp"

namespace slpwlo {

TabuStats run_tabu_wlo(FixedPointSpec& spec, const AccuracyEvaluator& evaluator,
                       const TargetModel& target, double accuracy_db,
                       const TabuOptions& options) {
    const WlCostModel cost_model(spec.kernel(), target);

    // Start from the all-maximum spec (always feasible if anything is).
    for (const NodeRef node : spec.nodes()) {
        spec.set_wl(node, target.max_wl());
    }
    SLPWLO_CHECK(!evaluator.violates(spec, accuracy_db),
                 "accuracy constraint " + std::to_string(accuracy_db) +
                     " dB is infeasible even at maximum word lengths");

    std::vector<int> wls = target.scalar_wls;
    std::sort(wls.begin(), wls.end());  // ascending

    const auto& nodes = spec.nodes();
    auto wl_index = [&wls](int wl) {
        for (size_t i = 0; i < wls.size(); ++i) {
            if (wls[i] == wl) return static_cast<int>(i);
        }
        return static_cast<int>(wls.size()) - 1;
    };

    auto objective = [&](bool feasible, double cost, double noise_db) {
        if (feasible) return cost;
        return cost + options.infeasibility_penalty *
                          std::max(0.0, noise_db - accuracy_db) *
                          cost_model.max_cost() / 100.0;
    };

    TabuStats stats;
    stats.initial_cost = cost_model.cost(spec);
    stats.best_cost = stats.initial_cost;
    stats.feasible = true;

    // Best feasible snapshot.
    std::vector<FixedFormat> best_formats(nodes.size());
    auto snapshot = [&] {
        for (size_t i = 0; i < nodes.size(); ++i) {
            best_formats[i] = spec.format(nodes[i]);
        }
    };
    snapshot();

    // tabu[(node, wl)] = iteration until which moving `node` to `wl` is
    // forbidden (prevents immediate reversals).
    std::map<std::pair<size_t, int>, int> tabu;

    int stagnation = 0;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
        stats.iterations = iter + 1;

        struct Move {
            size_t node_index = 0;
            int wl = 0;
            double score = 0.0;
            double cost = 0.0;
            bool feasible = false;
        };
        std::optional<Move> best_move;

        for (size_t i = 0; i < nodes.size(); ++i) {
            const int current = spec.format(nodes[i]).wl();
            const int ci = wl_index(current);
            for (const int delta : {-1, +1}) {
                const int ni = ci + delta;
                if (ni < 0 || ni >= static_cast<int>(wls.size())) continue;
                const int candidate_wl = wls[static_cast<size_t>(ni)];

                spec.set_wl(nodes[i], candidate_wl);
                const double noise_db = evaluator.noise_power_db(spec);
                const bool feasible = noise_db <= accuracy_db;
                const double cost = cost_model.cost(spec);
                spec.set_wl(nodes[i], current);

                const double score = objective(feasible, cost, noise_db);
                const auto tabu_it = tabu.find({i, candidate_wl});
                const bool is_tabu =
                    tabu_it != tabu.end() && tabu_it->second > iter;
                // Aspiration: a tabu move that beats the global best is
                // always admissible.
                if (is_tabu && !(feasible && cost < stats.best_cost)) {
                    continue;
                }
                if (!best_move || score < best_move->score) {
                    best_move = Move{i, candidate_wl, score, cost, feasible};
                }
            }
        }
        if (!best_move) break;

        const int old_wl = spec.format(nodes[best_move->node_index]).wl();
        spec.set_wl(nodes[best_move->node_index], best_move->wl);
        tabu[{best_move->node_index, old_wl}] = iter + options.tenure;

        if (best_move->feasible && best_move->cost < stats.best_cost) {
            stats.best_cost = best_move->cost;
            stats.improvements++;
            snapshot();
            stagnation = 0;
        } else {
            stagnation++;
            if (stagnation > options.stagnation_limit) break;
        }
    }

    // Restore the best feasible spec found.
    for (size_t i = 0; i < nodes.size(); ++i) {
        spec.set_format(nodes[i], best_formats[i]);
    }
    stats.feasible = !evaluator.violates(spec, accuracy_db);
    return stats;
}

}  // namespace slpwlo
