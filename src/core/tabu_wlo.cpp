#include "core/tabu_wlo.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace slpwlo {

TabuStats run_tabu_wlo(FixedPointSpec& spec, const AccuracyEvaluator& evaluator,
                       const TargetModel& target, double accuracy_db,
                       const TabuOptions& options) {
    const WlCostModel cost_model(spec.kernel(), target);

    // Start from the all-maximum spec (always feasible if anything is).
    for (const NodeRef node : spec.nodes()) {
        spec.set_wl(node, target.max_wl());
    }

    // Sessions make the candidate evaluation incremental: each single-node
    // move recomputes only the noise sites / cost terms that read the moved
    // node, returning exactly the doubles a full re-evaluation would.
    const std::unique_ptr<EvalSession> eval = evaluator.open_session(spec);
    const std::unique_ptr<WlCostSession> costs = cost_model.open_session(spec);

    SLPWLO_CHECK(!eval->violates(accuracy_db),
                 "accuracy constraint " + std::to_string(accuracy_db) +
                     " dB is infeasible even at maximum word lengths");

    std::vector<int> wls = target.scalar_wls;
    std::sort(wls.begin(), wls.end());  // ascending

    const auto& nodes = spec.nodes();

    // O(1) WL-value -> menu-index lookup (WLs are small positive ints).
    std::vector<int> wl_lut(static_cast<size_t>(wls.back()) + 1,
                            static_cast<int>(wls.size()) - 1);
    for (size_t i = 0; i < wls.size(); ++i) {
        wl_lut[static_cast<size_t>(wls[i])] = static_cast<int>(i);
    }
    auto wl_index = [&](int wl) {
        if (wl < 0 || wl > wls.back()) return static_cast<int>(wls.size()) - 1;
        return wl_lut[static_cast<size_t>(wl)];
    };

    auto objective = [&](bool feasible, double cost, double noise_db) {
        if (feasible) return cost;
        return cost + options.infeasibility_penalty *
                          std::max(0.0, noise_db - accuracy_db) *
                          cost_model.max_cost() / 100.0;
    };

    TabuStats stats;
    stats.initial_cost = costs->cost();
    stats.best_cost = stats.initial_cost;
    stats.feasible = true;

    // Best feasible snapshot.
    std::vector<FixedFormat> best_formats(nodes.size());
    auto snapshot = [&] {
        for (size_t i = 0; i < nodes.size(); ++i) {
            best_formats[i] = spec.format(nodes[i]);
        }
    };
    snapshot();

    // tabu[node * #wls + wl_index] = iteration until which moving `node` to
    // that WL is forbidden (prevents immediate reversals). -1 = never.
    std::vector<int> tabu(nodes.size() * wls.size(), -1);

    int stagnation = 0;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
        stats.iterations = iter + 1;

        struct Move {
            size_t node_index = 0;
            int wl = 0;
            double score = 0.0;
            double cost = 0.0;
            bool feasible = false;
        };
        std::optional<Move> best_move;

        for (size_t i = 0; i < nodes.size(); ++i) {
            const int current = spec.format(nodes[i]).wl();
            const int ci = wl_index(current);
            for (const int delta : {-1, +1}) {
                const int ni = ci + delta;
                if (ni < 0 || ni >= static_cast<int>(wls.size())) continue;
                const int candidate_wl = wls[static_cast<size_t>(ni)];

                // One probe window shared by both sessions: the restore
                // below puts their cached terms back by copy instead of a
                // second refresh pass (see EvalSession::begin_move).
                eval->begin_move(nodes[i]);
                costs->begin_move(nodes[i]);
                spec.set_wl(nodes[i], candidate_wl);
                const double noise_db = eval->noise_power_db();
                const bool feasible = noise_db <= accuracy_db;
                const double cost = costs->cost();
                spec.set_wl(nodes[i], current);
                eval->end_move();
                costs->end_move();

                const double score = objective(feasible, cost, noise_db);
                const int until =
                    tabu[i * wls.size() + static_cast<size_t>(ni)];
                const bool is_tabu = until > iter;
                // Aspiration: a tabu move that beats the global best is
                // always admissible.
                if (is_tabu && !(feasible && cost < stats.best_cost)) {
                    continue;
                }
                if (!best_move || score < best_move->score) {
                    best_move = Move{i, candidate_wl, score, cost, feasible};
                }
            }
        }
        if (!best_move) break;

        const int old_wl = spec.format(nodes[best_move->node_index]).wl();
        spec.set_wl(nodes[best_move->node_index], best_move->wl);
        tabu[best_move->node_index * wls.size() +
             static_cast<size_t>(wl_index(old_wl))] = iter + options.tenure;

        if (best_move->feasible && best_move->cost < stats.best_cost) {
            stats.best_cost = best_move->cost;
            stats.improvements++;
            snapshot();
            stagnation = 0;
        } else {
            stagnation++;
            if (stagnation > options.stagnation_limit) break;
        }
    }

    // Restore the best feasible spec found.
    for (size_t i = 0; i < nodes.size(); ++i) {
        spec.set_format(nodes[i], best_formats[i]);
    }
    stats.feasible = !eval->violates(accuracy_db);
    return stats;
}

}  // namespace slpwlo
