#include "core/wl_cost_model.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

namespace {

size_t node_slot(const Kernel& kernel, NodeRef node) {
    const size_t id = static_cast<size_t>(node.id);
    return node.kind == NodeRef::Kind::Var ? id : kernel.vars().size() + id;
}

}  // namespace

WlCostModel::WlCostModel(const Kernel& kernel, const TargetModel& target)
    : target_(target), kernel_(&kernel) {
    FixedPointSpec probe(kernel);  // reuse node_of resolution
    node_ops_.resize(kernel.vars().size() + kernel.arrays().size());
    for (const BlockId block : kernel.blocks_in_order()) {
        const double weight =
            static_cast<double>(kernel.block_frequency(block));
        for (const OpId op_id : kernel.block(block).ops) {
            const OpKind kind = kernel.op(op_id).kind;
            if (kind == OpKind::Const || kind == OpKind::Copy) continue;
            node_ops_[node_slot(kernel, probe.node_of(op_id))].push_back(
                static_cast<uint32_t>(ops_.size()));
            ops_.push_back(WeightedOp{op_id, kind, weight});
            max_cost_ +=
                weight * target.relative_op_cost(kind, target.max_wl());
        }
    }
}

double WlCostModel::cost(const FixedPointSpec& spec) const {
    double total = 0.0;
    for (const WeightedOp& wo : ops_) {
        const int wl = spec.result_format(wo.op).wl();
        total += wo.weight * target_.relative_op_cost(wo.kind, wl);
    }
    return total;
}

WlCostSession::WlCostSession(const WlCostModel& model, FixedPointSpec& spec)
    : model_(&model), spec_(&spec) {
    terms_.resize(model_->ops_.size());
    for (size_t i = 0; i < terms_.size(); ++i) refresh(i);
    cursor_ = spec_->journal_size();
}

void WlCostSession::refresh(size_t i) {
    const WlCostModel::WeightedOp& wo = model_->ops_[i];
    const int wl = spec_->result_format(wo.op).wl();
    terms_[i] = wo.weight * model_->target_.relative_op_cost(wo.kind, wl);
}

void WlCostSession::sync() {
    while (cursor_ < spec_->journal_size()) {
        const NodeRef node = spec_->journal_entry(cursor_++);
        for (const uint32_t i : model_->node_ops_[node_slot(
                 *model_->kernel_, node)]) {
            refresh(i);
        }
    }
}

double WlCostSession::cost() {
    sync();
    double total = 0.0;
    for (const double term : terms_) total += term;
    return total;
}

void WlCostSession::begin_move(NodeRef node) {
    sync();  // snapshot from a cache that is current
    move_ops_ = &model_->node_ops_[node_slot(*model_->kernel_, node)];
    saved_terms_.clear();
    for (const uint32_t i : *move_ops_) saved_terms_.push_back(terms_[i]);
}

void WlCostSession::end_move() {
    SLPWLO_ASSERT(move_ops_ != nullptr, "end_move without begin_move");
    for (size_t k = 0; k < move_ops_->size(); ++k) {
        terms_[(*move_ops_)[k]] = saved_terms_[k];
    }
    cursor_ = spec_->journal_size();
    move_ops_ = nullptr;
}

double WlCostSession::preview_move(NodeRef node, int wl) {
    begin_move(node);
    const FixedFormat saved = spec_->format(node);
    spec_->set_wl(node, wl);
    const double c = cost();
    spec_->set_format(node, saved);
    end_move();
    return c;
}

}  // namespace slpwlo
