#include "core/wl_cost_model.hpp"

namespace slpwlo {

WlCostModel::WlCostModel(const Kernel& kernel, const TargetModel& target)
    : target_(target) {
    for (const BlockId block : kernel.blocks_in_order()) {
        const double weight =
            static_cast<double>(kernel.block_frequency(block));
        for (const OpId op_id : kernel.block(block).ops) {
            const OpKind kind = kernel.op(op_id).kind;
            if (kind == OpKind::Const || kind == OpKind::Copy) continue;
            ops_.push_back(WeightedOp{op_id, kind, weight});
            max_cost_ +=
                weight * target.relative_op_cost(kind, target.max_wl());
        }
    }
}

double WlCostModel::cost(const FixedPointSpec& spec) const {
    double total = 0.0;
    for (const WeightedOp& wo : ops_) {
        const int wl = spec.result_format(wo.op).wl();
        total += wo.weight * target_.relative_op_cost(wo.kind, wl);
    }
    return total;
}

}  // namespace slpwlo
