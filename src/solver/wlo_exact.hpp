// Exact word-length optimization by branch and bound (the `WLO-Optimal`
// flow's optimizer).
//
// Same problem as core/tabu_wlo.hpp — one WL per node from the target's
// supported scalar set, minimize the WlCostModel proxy subject to the
// accuracy constraint — solved exactly instead of by Tabu search. Two
// structural facts make the exact search affordable:
//
//  * the cost model is separable per node (an op is charged at the WL of
//    the one node it reads), so the maximum cost saving every unassigned
//    node could still contribute is a constant computed once at the root
//    with preview_move probes, and the bound of a partial assignment is
//    current cost minus the sum of those remaining savings;
//  * noise is monotone in every node's WL (more fraction bits at a node
//    never add noise), so evaluating a partial assignment with all
//    unassigned nodes at the maximum WL yields the noise of its *best*
//    completion — if that already violates the constraint, the whole
//    subtree is infeasible.
//
// Each partial-assignment evaluation is one incremental-session query
// (PR 6's delta machinery), bit-identical to a full recompute, so the
// bounds are exact by construction, not modeled. The Tabu result seeds
// the incumbent: the search can only improve on the heuristic, which is
// what the gap report measures.
//
// Deterministic by construction: fixed branch order (largest potential
// saving first), fixed value order (cheapest WL first), node-count
// budget. See solver/bnb.hpp for the budget contract.
#pragma once

#include "core/tabu_wlo.hpp"
#include "solver/bnb.hpp"

namespace slpwlo::solver {

struct WloExactOptions {
    /// The heuristic run that seeds the incumbent.
    TabuOptions tabu;
    SolveBudget budget;
    /// Incumbent-pruning slack: a subtree survives only if its bound
    /// beats the incumbent by more than eps (see BnbOptions::eps).
    double eps = 1e-9;
};

struct WloExactResult {
    /// Stats of the seeding Tabu run (reported as the flow's tabu stats,
    /// exactly as `WLO-First` reports them).
    TabuStats tabu;
    /// Stats of the exact search proper.
    SolveStats solve;
    /// Cost of the Tabu incumbent (the heuristic objective).
    double heuristic_cost = 0.0;
    /// Cost of the best assignment found (== the optimum when
    /// solve.proven_optimal); never worse than heuristic_cost.
    double best_cost = 0.0;
};

/// Optimizes `spec` in place: runs Tabu first for the incumbent, then
/// branch and bound over the full per-node WL space, and leaves `spec`
/// at the best feasible assignment found.
WloExactResult run_wlo_exact(FixedPointSpec& spec,
                             const AccuracyEvaluator& evaluator,
                             const TargetModel& target, double accuracy_db,
                             const WloExactOptions& options = {});

}  // namespace slpwlo::solver
