// A small home-grown 0/1 ILP branch-and-bound core.
//
// The optimal flows (`WLO-Optimal`, `SLP-Optimal`) need exact answers to
// two combinatorial questions the paper solves heuristically: which SLP
// packs to select (goSLP poses this as an ILP) and which word length to
// give every node (Tabu search in the paper). Both are small enough that
// a dependency-free solver beats shipping one: the models have tens of
// variables, the constraints are pairwise exclusions, and the objective
// is separable — so an LP relaxation buys little over the LP-free bound
// implemented here (constraint propagation plus incumbent pruning).
//
// Determinism is a hard contract, not an aspiration: the sweep layer
// byte-compares reports across thread counts and worker farms, so the
// same problem and the same budget must expand the same tree and return
// the same incumbent everywhere. Everything that orders the search —
// branch variable order, value order, tie-breaks — is fixed up front,
// and the default budget counts *nodes*, not milliseconds. A wall-clock
// budget exists for interactive use but is off by default precisely
// because it breaks the contract (see SolveBudget).
//
// Scope: binary variables, linear `<=` constraints with non-negative
// coefficients and right-hand sides (which covers the pairwise-exclusion
// models we build: x_i + x_j <= 1), maximize or minimize. The bound is
//
//   bound(partial) = value(fixed vars)
//                  + sum of favorable weights of still-available vars
//
// where a free variable is *available* while setting it to 1 keeps every
// constraint's remaining slack non-negative. With non-negative
// coefficients this is a valid relaxation: no completion can collect
// weight the bound did not count.
//
// An `on_fix` hook lets the caller veto x_i = 1 with state the model
// cannot express linearly (the accuracy-coupled pack selection applies
// equation 1 to a scratch spec and checks the constraint); `on_unfix`
// undoes it on backtrack. A vetoed fix prunes exactly that branch, so
// the search stays exact *with respect to the hook*: the solver proves
// optimality over the solutions the hook admits.
#pragma once

#include <functional>
#include <vector>

#include "support/diagnostics.hpp"

namespace slpwlo::solver {

/// Search budget shared by every exact solver in this subsystem.
struct SolveBudget {
    /// Maximum number of branch-and-bound nodes to expand (a node is one
    /// value assignment tried at one variable). When the budget runs out
    /// the solver returns the best incumbent found so far — anytime
    /// behavior — with `proven_optimal` false. Deterministic: the same
    /// budget expands the same tree on every machine. The default is
    /// sized so every registry kernel proves optimality on the shipped
    /// targets (CONV's pack selection is the ceiling at ~5.6M nodes);
    /// nodes are cheap — the full four-kernel sweep stays in seconds.
    long long max_nodes = 8000000;

    /// Optional wall-clock budget in milliseconds; 0 disables it. This
    /// is the one knob that breaks run-to-run determinism (the tree now
    /// depends on machine speed), so it is off by default and the sweep
    /// layer never turns it on. Intended for interactive exploration.
    long long max_millis = 0;
};

/// Statistics of one exact solve, reported per flow (flow/report.cpp)
/// and summed across the per-round solves of `SLP-Optimal`.
struct SolveStats {
    /// Nodes expanded (value assignments tried).
    long long nodes = 0;
    /// True when the search space was exhausted within budget: the
    /// incumbent is optimal (within `BnbOptions::eps`), not just best
    /// found so far.
    bool proven_optimal = false;
    /// True when any feasible solution is known (seeded or found).
    bool has_incumbent = false;
    /// Objective of the incumbent (meaningful when has_incumbent).
    double best_objective = 0.0;
};

/// One linear constraint: sum of coeff * x(var) <= rhs, all coefficients
/// and rhs non-negative.
struct BnbConstraint {
    std::vector<std::pair<int, double>> terms;
    double rhs = 0.0;
};

/// A 0/1 ILP: optimize sum weights[i] * x[i] subject to the constraints.
struct BnbProblem {
    enum class Sense { Maximize, Minimize };
    Sense sense = Sense::Maximize;
    std::vector<double> weights;
    std::vector<BnbConstraint> constraints;
};

struct BnbOptions {
    SolveBudget budget;
    /// Floating-point slack for bound comparisons: a branch is pruned
    /// only when its bound cannot beat the incumbent by more than eps,
    /// and "proven optimal" means optimal within eps. Keeps optimality
    /// claims sound in the presence of accumulated rounding.
    double eps = 1e-9;
};

/// Caller-state coupling hooks (both empty by default). `on_fix(i)` runs
/// when the search sets x_i = 1; returning false vetoes the branch (the
/// solver treats x_i = 1 as infeasible *here* and does not call
/// `on_unfix`). `on_unfix(i)` undoes a successful fix on backtrack.
/// Fixes and unfixes nest strictly LIFO.
struct BnbHooks {
    std::function<bool(int)> on_fix;
    std::function<void(int)> on_unfix;
};

struct BnbResult {
    /// Incumbent assignment, one 0/1 per variable (all zero when no
    /// incumbent exists — check stats.has_incumbent).
    std::vector<char> assignment;
    SolveStats stats;
};

/// Solves the problem by depth-first branch and bound. `initial`, when
/// given, seeds the incumbent (it must satisfy the linear constraints;
/// its objective is recomputed here). The variable order is fixed up
/// front — favorable weight magnitude descending, index ascending on
/// ties — and the favorable value is tried first, so the greedy-looking
/// solution is reached early and the budget is spent tightening it.
BnbResult solve_bnb(const BnbProblem& problem, const BnbOptions& options = {},
                    const BnbHooks& hooks = {},
                    const std::vector<char>* initial = nullptr);

}  // namespace slpwlo::solver
