// Exact SLP pack selection (the `SLP-Optimal` flow's per-round selector).
//
// goSLP showed that pairwise pack selection can be posed as an ILP and
// solved to optimality at practical cost. This module does the same over
// our existing round structures: one 0/1 variable per candidate, one
// `x_i + x_j <= 1` constraint per conflicting pair (structural and
// accuracy conflicts alike — the engine merged both into the ConflictSet
// before selection), objective = sum of selected benefits, solved with
// solver/bnb.hpp.
//
// The greedy selector's benefit is pool-dependent: a candidate is scored
// against whatever it could still coexist with at that point of the
// iteration, so "total greedy benefit" is not a well-defined objective.
// The exact model adopts a fixed-weight convention instead: every
// candidate is scored ONCE, against the round-start pool (all candidates
// it does not conflict with) — exactly the pool the greedy loop uses for
// its first pick. Candidates whose round-start benefit falls below the
// profitability floor are excluded outright, mirroring the greedy stop
// rule. Optimality claims are therefore *per round, under the
// round-start weights* — the honest goSLP-style statement, documented in
// DESIGN.md §13.
//
// The greedy selection (run with the same feasibility hook) seeds the
// incumbent, so the exact answer is never worse than the heuristic on
// this objective — the invariant the gap report and the CI gap-smoke
// job assert.
//
// Accuracy coupling that the linear model cannot express (cumulative
// equation-1 feasibility) enters through the fix/unfix callbacks: `fix`
// applies a candidate's WL commitment revertibly and may veto, `unfix`
// undoes it (strict LIFO, see BnbHooks). The returned selection is NOT
// committed — the caller replays it through its usual selection hook.
#pragma once

#include "slp/benefit.hpp"
#include "solver/bnb.hpp"

namespace slpwlo::solver {

struct PackSelectOptions {
    BenefitMode benefit_mode = BenefitMode::ReuseOverCost;
    /// Profitability floor, same meaning as SlpOptions::min_benefit:
    /// candidates scoring below it (at round-start weights) never enter
    /// the model.
    double min_benefit = 0.75;
    SolveBudget budget;
    double eps = 1e-9;
};

/// Exact-selection statistics accumulated across rounds and blocks (one
/// `SLP-Optimal` flow runs one solve per extraction round per block).
struct PackSelectStats {
    long long nodes = 0;
    long long solves = 0;
    /// AND over all solves: every round was solved to proven optimality.
    bool proven_optimal = true;
    /// Summed fixed-weight objective of the greedy incumbents.
    double heuristic_objective = 0.0;
    /// Summed fixed-weight objective of the exact selections
    /// (>= heuristic_objective by construction).
    double best_objective = 0.0;
};

struct PackSelectResult {
    /// The exact selection, in candidate-index order, not yet committed.
    std::vector<Candidate> selected;
    SolveStats solve;
    /// Fixed-weight objective of the greedy incumbent for this round.
    double greedy_objective = 0.0;
};

/// Revertible accuracy coupling (both optional): `fix` applies the
/// candidate's selection effects and may veto by returning false; `unfix`
/// undoes the most recent successful fix (LIFO).
using PackFix = std::function<bool(const Candidate&)>;
using PackUnfix = std::function<void(const Candidate&)>;

/// Select the benefit-maximal conflict-free subset of `candidates`.
/// `rejected_count`, when given, accumulates the greedy incumbent pass's
/// feasibility vetoes (the same stat the greedy selector reports).
PackSelectResult select_packs_exact(
    const PackedView& view, const std::vector<Candidate>& candidates,
    const ConflictSet& conflicts, const TargetModel& target,
    const PackSelectOptions& options, const PackFix& fix = {},
    const PackUnfix& unfix = {}, int* rejected_count = nullptr);

}  // namespace slpwlo::solver
