#include "solver/pack_select.hpp"

#include <algorithm>

namespace slpwlo::solver {

PackSelectResult select_packs_exact(
    const PackedView& view, const std::vector<Candidate>& candidates,
    const ConflictSet& conflicts, const TargetModel& target,
    const PackSelectOptions& options, const PackFix& fix,
    const PackUnfix& unfix, int* rejected_count) {
    PackSelectResult result;

    // Round-start weights: each candidate scored once against everything
    // it does not conflict with (the greedy loop's first-pick pool).
    std::vector<double> weight(candidates.size(), 0.0);
    for (size_t i = 0; i < candidates.size(); ++i) {
        std::vector<const Candidate*> pool;
        pool.reserve(candidates.size());
        for (size_t j = 0; j < candidates.size(); ++j) {
            if (j != i && !conflicts.conflict(i, j)) {
                pool.push_back(&candidates[j]);
            }
        }
        const Economics econ =
            evaluate_candidate(view, pool, candidates[i], target);
        weight[i] = benefit_score(econ, options.benefit_mode);
    }

    // Model variables: candidates at or above the profitability floor.
    std::vector<size_t> vars;
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (weight[i] >= options.min_benefit) vars.push_back(i);
    }
    std::vector<int> var_of(candidates.size(), -1);
    for (size_t v = 0; v < vars.size(); ++v) {
        var_of[vars[v]] = static_cast<int>(v);
    }

    BnbProblem problem;
    problem.sense = BnbProblem::Sense::Maximize;
    problem.weights.reserve(vars.size());
    for (const size_t i : vars) problem.weights.push_back(weight[i]);
    for (size_t a = 0; a < vars.size(); ++a) {
        for (size_t b = a + 1; b < vars.size(); ++b) {
            if (conflicts.conflict(vars[a], vars[b])) {
                problem.constraints.push_back(
                    {{{static_cast<int>(a), 1.0}, {static_cast<int>(b), 1.0}},
                     1.0});
            }
        }
    }

    // Greedy incumbent, run with the same feasibility coupling and then
    // fully unwound: the exact search starts from the heuristic answer
    // and can only improve on it.
    std::vector<Candidate> greedy = select_candidates(
        view, candidates, conflicts, target, options.benefit_mode,
        options.min_benefit, fix ? TrySelect(fix) : TrySelect{},
        rejected_count);
    if (unfix) {
        for (size_t k = greedy.size(); k-- > 0;) unfix(greedy[k]);
    }
    std::vector<char> incumbent(vars.size(), 0);
    for (const Candidate& c : greedy) {
        const auto it = std::find(candidates.begin(), candidates.end(), c);
        SLPWLO_ASSERT(it != candidates.end(),
                      "greedy selected an unknown candidate");
        const int v = var_of[static_cast<size_t>(it - candidates.begin())];
        // A greedy pick can sit below the round-start floor only through
        // pool shrinkage; the restricted incumbent simply omits it.
        if (v >= 0) incumbent[static_cast<size_t>(v)] = 1;
    }
    for (size_t v = 0; v < vars.size(); ++v) {
        if (incumbent[v]) result.greedy_objective += weight[vars[v]];
    }

    BnbOptions bnb_options;
    bnb_options.budget = options.budget;
    bnb_options.eps = options.eps;
    BnbHooks hooks;
    if (fix) {
        hooks.on_fix = [&](int v) {
            return fix(candidates[vars[static_cast<size_t>(v)]]);
        };
    }
    if (unfix) {
        hooks.on_unfix = [&](int v) {
            unfix(candidates[vars[static_cast<size_t>(v)]]);
        };
    }
    const BnbResult solved =
        solve_bnb(problem, bnb_options, hooks, &incumbent);
    result.solve = solved.stats;
    for (size_t v = 0; v < vars.size(); ++v) {
        if (solved.assignment[v]) {
            result.selected.push_back(candidates[vars[v]]);
        }
    }
    return result;
}

}  // namespace slpwlo::solver
