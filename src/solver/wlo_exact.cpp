#include "solver/wlo_exact.hpp"

#include <algorithm>
#include <chrono>

namespace slpwlo::solver {

namespace {

/// DFS state over the per-node WL assignment space. The spec always
/// reflects the current partial assignment with every unassigned node at
/// the maximum WL, so session queries *are* the bound computations.
class WloSearch {
public:
    WloSearch(FixedPointSpec& spec, EvalSession& eval, WlCostSession& costs,
              double accuracy_db, const WloExactOptions& options,
              std::vector<int> wls)
        : spec_(spec),
          eval_(eval),
          costs_(costs),
          accuracy_db_(accuracy_db),
          options_(options),
          wls_(std::move(wls)) {
        const auto& nodes = spec_.nodes();
        const double max_cost = costs_.cost();
        // Per-node maximum saving relative to all-max, from root probes.
        // Separability makes these constants of the whole search: an
        // op's cost depends only on its own node's WL.
        std::vector<double> max_saving(nodes.size(), 0.0);
        for (size_t i = 0; i < nodes.size(); ++i) {
            for (const int wl : wls_) {
                max_saving[i] = std::max(
                    max_saving[i], max_cost - costs_.preview_move(nodes[i], wl));
            }
        }
        // Branch on the biggest potential saving first (ties by node
        // index): decisions that matter most happen high in the tree,
        // which is where pruning pays.
        order_.resize(nodes.size());
        for (size_t i = 0; i < nodes.size(); ++i) {
            order_[i] = static_cast<int>(i);
        }
        std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
            return max_saving[static_cast<size_t>(a)] >
                   max_saving[static_cast<size_t>(b)];
        });
        remaining_saving_.assign(nodes.size() + 1, 0.0);
        for (size_t k = nodes.size(); k-- > 0;) {
            remaining_saving_[k] =
                remaining_saving_[k + 1] +
                max_saving[static_cast<size_t>(order_[k])];
        }
        if (options_.budget.max_millis > 0) {
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.budget.max_millis);
        }
        best_formats_.resize(nodes.size());
    }

    void seed(double incumbent_cost,
              const std::vector<FixedFormat>& incumbent_formats) {
        best_cost_ = incumbent_cost;
        best_formats_ = incumbent_formats;
        has_best_ = true;
    }

    SolveStats run() {
        descend(0);
        // Leave the spec at the best assignment found (the Tabu seed
        // when the search improved nothing).
        const auto& nodes = spec_.nodes();
        for (size_t i = 0; i < nodes.size(); ++i) {
            spec_.set_format(nodes[i], best_formats_[i]);
        }
        SolveStats stats;
        stats.nodes = nodes_;
        stats.proven_optimal = !out_of_budget_;
        stats.has_incumbent = has_best_;
        stats.best_objective = best_cost_;
        return stats;
    }

private:
    bool spend_node() {
        if (++nodes_ > options_.budget.max_nodes) {
            out_of_budget_ = true;
            return false;
        }
        if (options_.budget.max_millis > 0 && (nodes_ & 63) == 0 &&
            std::chrono::steady_clock::now() >= deadline_) {
            out_of_budget_ = true;
            return false;
        }
        return true;
    }

    void descend(size_t depth) {
        if (out_of_budget_) return;
        const auto& nodes = spec_.nodes();
        if (depth == nodes.size()) {
            // Every node assigned; feasibility was checked when the last
            // assignment was made.
            const double cost = costs_.cost();
            if (!has_best_ || cost < best_cost_ - options_.eps) {
                best_cost_ = cost;
                has_best_ = true;
                for (size_t i = 0; i < nodes.size(); ++i) {
                    best_formats_[i] = spec_.format(nodes[i]);
                }
            }
            return;
        }
        const NodeRef node = nodes[static_cast<size_t>(order_[depth])];
        const int max_wl = spec_.format(node).wl();
        // Cheapest WL first. Cost is monotone in the WL (storage
        // rounding never shrinks with more bits), so once a child's
        // bound cannot beat the incumbent no wider sibling can either —
        // the loop breaks instead of continuing. Feasibility runs the
        // other way (wider is quieter), so an infeasible child only
        // skips itself.
        for (const int wl : wls_) {
            if (out_of_budget_) break;
            if (!spend_node()) break;
            eval_.commit_move(node, wl);
            const double bound = costs_.cost() - remaining_saving_[depth + 1];
            if (has_best_ && bound >= best_cost_ - options_.eps) break;
            if (!eval_.violates(accuracy_db_)) descend(depth + 1);
        }
        // Restore the all-max convention for this node on backtrack.
        eval_.commit_move(node, max_wl);
    }

    FixedPointSpec& spec_;
    EvalSession& eval_;
    WlCostSession& costs_;
    const double accuracy_db_;
    const WloExactOptions& options_;
    std::vector<int> wls_;

    std::vector<int> order_;
    std::vector<double> remaining_saving_;

    std::vector<FixedFormat> best_formats_;
    double best_cost_ = 0.0;
    bool has_best_ = false;

    long long nodes_ = 0;
    bool out_of_budget_ = false;
    std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

WloExactResult run_wlo_exact(FixedPointSpec& spec,
                             const AccuracyEvaluator& evaluator,
                             const TargetModel& target, double accuracy_db,
                             const WloExactOptions& options) {
    WloExactResult result;
    // The heuristic first: its best feasible spec is the incumbent and
    // its cost is the baseline the gap is measured against.
    result.tabu =
        run_tabu_wlo(spec, evaluator, target, accuracy_db, options.tabu);
    result.heuristic_cost = result.tabu.best_cost;

    const auto& nodes = spec.nodes();
    std::vector<FixedFormat> incumbent(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        incumbent[i] = spec.format(nodes[i]);
    }

    // Root of the exact search: everything back at the maximum WL (the
    // Tabu run already proved this root feasible).
    for (const NodeRef node : nodes) {
        spec.set_wl(node, target.max_wl());
    }
    const WlCostModel cost_model(spec.kernel(), target);
    const std::unique_ptr<EvalSession> eval = evaluator.open_session(spec);
    const std::unique_ptr<WlCostSession> costs = cost_model.open_session(spec);

    std::vector<int> wls = target.scalar_wls;
    std::sort(wls.begin(), wls.end());  // ascending: cheapest child first

    WloSearch search(spec, *eval, *costs, accuracy_db, options,
                     std::move(wls));
    search.seed(result.heuristic_cost, incumbent);
    result.solve = search.run();
    result.best_cost = result.solve.best_objective;
    return result;
}

}  // namespace slpwlo::solver
