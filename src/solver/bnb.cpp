#include "solver/bnb.hpp"

#include <algorithm>
#include <chrono>

namespace slpwlo::solver {

namespace {

/// The whole search state, on the internally-normalized problem: weights
/// are negated up front for Minimize, so the search always maximizes and
/// the caller-visible objective is negated back at the end.
class BnbSearch {
public:
    BnbSearch(const BnbProblem& problem, const BnbOptions& options,
              const BnbHooks& hooks, std::vector<double> weights)
        : problem_(problem),
          options_(options),
          hooks_(hooks),
          weights_(std::move(weights)),
          current_(weights_.size(), 0),
          terms_of_var_(weights_.size()) {
        slack_.reserve(problem.constraints.size());
        for (size_t c = 0; c < problem.constraints.size(); ++c) {
            const BnbConstraint& constraint = problem.constraints[c];
            SLPWLO_CHECK(constraint.rhs >= 0.0,
                         "bnb constraint rhs must be non-negative");
            slack_.push_back(constraint.rhs);
            for (const auto& [var, coeff] : constraint.terms) {
                SLPWLO_CHECK(var >= 0 &&
                                 static_cast<size_t>(var) < weights_.size(),
                             "bnb constraint references unknown variable");
                SLPWLO_CHECK(coeff >= 0.0,
                             "bnb constraint coefficients must be "
                             "non-negative");
                terms_of_var_[var].emplace_back(c, coeff);
            }
        }
        // Only positive-weight variables can improve a maximization and
        // no constraint can force a variable to 1, so everything else is
        // fixed to 0 outright and the branch order covers the rest:
        // weight descending, index ascending on ties.
        for (size_t i = 0; i < weights_.size(); ++i) {
            if (weights_[i] > 0.0) order_.push_back(static_cast<int>(i));
        }
        std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
            return weights_[a] > weights_[b];
        });
        if (options_.budget.max_millis > 0) {
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.budget.max_millis);
        }
    }

    void seed(const std::vector<char>& initial) {
        SLPWLO_CHECK(initial.size() == weights_.size(),
                     "bnb incumbent size mismatch");
        double value = 0.0;
        std::vector<double> slack = slack_;
        for (size_t i = 0; i < initial.size(); ++i) {
            if (!initial[i]) continue;
            value += weights_[i];
            for (const auto& [c, coeff] : terms_of_var_[i]) {
                slack[c] -= coeff;
                SLPWLO_CHECK(slack[c] >= -options_.eps,
                             "bnb incumbent violates a constraint");
            }
        }
        best_ = initial;
        best_value_ = value;
        has_best_ = true;
    }

    BnbResult run() {
        descend(0);
        BnbResult result;
        result.stats.nodes = nodes_;
        result.stats.proven_optimal = !out_of_budget_;
        result.stats.has_incumbent = has_best_;
        if (has_best_) {
            result.assignment = best_;
            result.stats.best_objective = problem_.sense ==
                                                  BnbProblem::Sense::Minimize
                                              ? -best_value_
                                              : best_value_;
        } else {
            result.assignment.assign(weights_.size(), 0);
        }
        return result;
    }

private:
    /// A variable is available while fixing it to 1 keeps every slack
    /// non-negative (within eps).
    bool available(int var) const {
        for (const auto& [c, coeff] : terms_of_var_[var]) {
            if (coeff > slack_[c] + options_.eps) return false;
        }
        return true;
    }

    /// Optimistic completion value from branch position `depth`: every
    /// still-available free variable joins at full weight. Valid because
    /// coefficients are non-negative — fixing other variables can only
    /// shrink slacks, never make an unavailable variable available.
    double bound_from(size_t depth) const {
        double bound = current_value_;
        for (size_t k = depth; k < order_.size(); ++k) {
            const int var = order_[k];
            if (available(var)) bound += weights_[var];
        }
        return bound;
    }

    /// Counts one value assignment against the budget; returns false
    /// when the search must stop (anytime: the incumbent survives).
    bool spend_node() {
        if (nodes_ >= options_.budget.max_nodes) {
            out_of_budget_ = true;
            return false;
        }
        ++nodes_;
        if (options_.budget.max_millis > 0 && (nodes_ & 63) == 0 &&
            std::chrono::steady_clock::now() >= deadline_) {
            out_of_budget_ = true;
            return false;
        }
        return true;
    }

    void descend(size_t depth) {
        if (out_of_budget_) return;
        if (depth == order_.size()) {
            if (!has_best_ || current_value_ > best_value_ + options_.eps) {
                best_ = current_;
                best_value_ = current_value_;
                has_best_ = true;
            }
            return;
        }
        if (has_best_ && bound_from(depth) <= best_value_ + options_.eps) {
            return;
        }
        const int var = order_[depth];
        // Favorable branch first: x = 1 (positive weight by
        // construction), so a greedy-shaped incumbent appears early and
        // tight budgets are spent improving it, not finding it.
        if (available(var)) {
            if (!spend_node()) return;
            if (!hooks_.on_fix || hooks_.on_fix(var)) {
                current_[var] = 1;
                current_value_ += weights_[var];
                for (const auto& [c, coeff] : terms_of_var_[var]) {
                    slack_[c] -= coeff;
                }
                descend(depth + 1);
                for (const auto& [c, coeff] : terms_of_var_[var]) {
                    slack_[c] += coeff;
                }
                current_value_ -= weights_[var];
                current_[var] = 0;
                if (hooks_.on_unfix) hooks_.on_unfix(var);
            }
        }
        if (out_of_budget_) return;
        if (!spend_node()) return;
        descend(depth + 1);
    }

    const BnbProblem& problem_;
    const BnbOptions& options_;
    const BnbHooks& hooks_;
    std::vector<double> weights_;

    std::vector<char> current_;
    std::vector<std::vector<std::pair<int, double>>> terms_of_var_;
    std::vector<double> slack_;
    std::vector<int> order_;
    double current_value_ = 0.0;

    std::vector<char> best_;
    double best_value_ = 0.0;
    bool has_best_ = false;

    long long nodes_ = 0;
    bool out_of_budget_ = false;
    std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

BnbResult solve_bnb(const BnbProblem& problem, const BnbOptions& options,
                    const BnbHooks& hooks, const std::vector<char>* initial) {
    std::vector<double> weights = problem.weights;
    if (problem.sense == BnbProblem::Sense::Minimize) {
        for (double& w : weights) w = -w;
    }
    BnbSearch search(problem, options, hooks, std::move(weights));
    if (initial) search.seed(*initial);
    return search.run();
}

}  // namespace slpwlo::solver
