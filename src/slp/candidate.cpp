#include "slp/candidate.hpp"

#include <algorithm>
#include <map>

namespace slpwlo {

bool is_groupable(OpKind kind) {
    switch (kind) {
        case OpKind::Add:
        case OpKind::Sub:
        case OpKind::Mul:
        case OpKind::Neg:
        case OpKind::Load:
        case OpKind::Store:
            return true;
        case OpKind::Const:
        case OpKind::Copy:
        case OpKind::Div:
            return false;
    }
    return false;
}

bool isomorphic(const PackedView& view, int a, int b) {
    const OpKind kind = view.kind(a);
    if (kind != view.kind(b)) return false;
    if (!is_groupable(kind)) return false;
    if (view.width(a) != view.width(b)) return false;
    if (kind == OpKind::Load || kind == OpKind::Store) {
        const Op& oa = view.kernel().op(view.node(a).lanes.front());
        const Op& ob = view.kernel().op(view.node(b).lanes.front());
        if (oa.array != ob.array) return false;
    }
    return true;
}

namespace {

/// Memory index of the first/last lane of a node (memory kinds only).
const Affine& first_index(const PackedView& view, int node) {
    return view.kernel().op(view.node(node).lanes.front()).index;
}
const Affine& last_index(const PackedView& view, int node) {
    return view.kernel().op(view.node(node).lanes.back()).index;
}

/// Orient a memory candidate so that, when the tail of `a` is adjacent to
/// the head of `b` (ascending addresses), lanes come out contiguous.
Candidate orient(const PackedView& view, int a, int b) {
    const OpKind kind = view.kind(a);
    if (kind == OpKind::Load || kind == OpKind::Store) {
        const auto fwd = first_index(view, b).constant_difference(
            last_index(view, a));
        if (fwd.has_value() && *fwd == 1) return Candidate{a, b};
        const auto rev = first_index(view, a).constant_difference(
            last_index(view, b));
        if (rev.has_value() && *rev == 1) return Candidate{b, a};
    }
    return Candidate{a, b};
}

}  // namespace

std::vector<MemoryRun> find_memory_runs(const PackedView& view) {
    // Candidate members: scalar (width-1) memory nodes, grouped by
    // (kind, array) — runs never mix kinds or arrays.
    struct Key {
        OpKind kind;
        int32_t array;
        bool operator<(const Key& other) const {
            if (kind != other.kind) return kind < other.kind;
            return array < other.array;
        }
    };
    std::map<Key, std::vector<int>> members;
    for (int i = 0; i < view.size(); ++i) {
        const OpKind kind = view.kind(i);
        if (kind != OpKind::Load && kind != OpKind::Store) continue;
        if (view.width(i) != 1) continue;
        const Op& op = view.kernel().op(view.node(i).lanes.front());
        members[Key{kind, op.array.index()}].push_back(i);
    }

    std::vector<MemoryRun> runs;
    for (const auto& [key, nodes] : members) {
        (void)key;
        // successor[i]: the node whose index is exactly one past node i's
        // (lowest view index wins when duplicated loads alias an address).
        std::map<int, int> successor;
        std::vector<bool> has_predecessor(nodes.size(), false);
        for (size_t i = 0; i < nodes.size(); ++i) {
            for (size_t j = 0; j < nodes.size(); ++j) {
                if (i == j) continue;
                const auto diff = first_index(view, nodes[j])
                                      .constant_difference(
                                          first_index(view, nodes[i]));
                if (!diff.has_value() || *diff != 1) continue;
                if (!view.independent(nodes[i], nodes[j])) continue;
                if (successor.emplace(nodes[i], nodes[j]).second) {
                    has_predecessor[j] = true;
                }
            }
        }
        // Walk each adjacency chain from its head and split it into
        // maximal mutually-independent segments: a dependence break ends
        // the current run, and the offending node *starts the next one*
        // (the suffix of a broken chain is still seedable).
        for (size_t i = 0; i < nodes.size(); ++i) {
            if (has_predecessor[i]) continue;
            MemoryRun run;
            run.nodes.push_back(nodes[i]);
            for (auto it = successor.find(nodes[i]); it != successor.end();
                 it = successor.find(it->second)) {
                const int next = it->second;
                const bool clean = std::all_of(
                    run.nodes.begin(), run.nodes.end(),
                    [&](int n) { return view.independent(n, next); });
                if (!clean) {
                    if (run.length() >= 2) runs.push_back(std::move(run));
                    run = MemoryRun{};
                }
                run.nodes.push_back(next);
            }
            if (run.length() >= 2) runs.push_back(std::move(run));
        }
    }
    std::sort(runs.begin(), runs.end(),
              [](const MemoryRun& x, const MemoryRun& y) {
                  return x.nodes.front() < y.nodes.front();
              });
    return runs;
}

std::vector<Candidate> seed_runs(const PackedView& view,
                                 const TargetModel& target) {
    std::vector<Candidate> seeds;
    // Inert on targets that can pair: the pairwise path covers them, and
    // adding seeds there would perturb the selection existing reports
    // were produced with.
    if (target.supports_group_size(2)) return seeds;
    const std::vector<int> lane_counts = target.feasible_group_sizes();
    if (lane_counts.empty()) return seeds;

    const std::vector<MemoryRun> runs = find_memory_runs(view);
    for (const MemoryRun& run : runs) {
        for (const int k : lane_counts) {
            for (int offset = 0; offset + k <= run.length(); offset += k) {
                seeds.emplace_back(std::vector<int>(
                    run.nodes.begin() + offset,
                    run.nodes.begin() + offset + k));
            }
        }
    }
    return seeds;
}

std::vector<Candidate> extract_candidates(const PackedView& view,
                                          const TargetModel& target) {
    // Lanes available per isomorphism class, for the virtual-width
    // availability gate below (computed lazily, once).
    std::vector<int> class_lanes;
    auto lanes_isomorphic_to = [&](int node) {
        if (class_lanes.empty()) {
            class_lanes.assign(static_cast<size_t>(view.size()), 0);
            for (int i = 0; i < view.size(); ++i) {
                for (int j = 0; j < view.size(); ++j) {
                    if (i == j || isomorphic(view, i, j)) {
                        class_lanes[static_cast<size_t>(i)] += view.width(j);
                    }
                }
            }
        }
        return class_lanes[static_cast<size_t>(node)];
    };

    std::vector<Candidate> out;
    for (int a = 0; a < view.size(); ++a) {
        for (int b = a + 1; b < view.size(); ++b) {
            if (!isomorphic(view, a, b)) continue;
            const int fused_width = view.width(a) + view.width(b);
            if (!target.supports_group_size(fused_width)) {
                // Virtual intermediate width: acceptable only when the
                // fused group can keep doubling into an implementable
                // size — and the view actually holds enough isomorphic
                // lanes to get there. Without the availability gate a
                // starved block would fuse (and commit equation-1 WL
                // reductions) toward a realization that cannot exist,
                // then strand; necessary-but-not-sufficient is fine, the
                // engine's de-virtualization pass is the safety net.
                const auto k = target.realization_group_size(fused_width);
                if (!k.has_value()) continue;
                if (lanes_isomorphic_to(a) < *k) continue;
            }
            if (!view.independent(a, b)) continue;
            out.push_back(orient(view, a, b));
        }
    }
    // k-lane run seeds after the pairs (cliff targets only); selection
    // order among candidates is benefit-driven, so position only breaks
    // exact ties deterministically.
    std::vector<Candidate> seeds = seed_runs(view, target);
    out.insert(out.end(), std::make_move_iterator(seeds.begin()),
               std::make_move_iterator(seeds.end()));
    return out;
}

}  // namespace slpwlo
