#include "slp/candidate.hpp"

namespace slpwlo {

bool is_groupable(OpKind kind) {
    switch (kind) {
        case OpKind::Add:
        case OpKind::Sub:
        case OpKind::Mul:
        case OpKind::Neg:
        case OpKind::Load:
        case OpKind::Store:
            return true;
        case OpKind::Const:
        case OpKind::Copy:
        case OpKind::Div:
            return false;
    }
    return false;
}

bool isomorphic(const PackedView& view, int a, int b) {
    const OpKind kind = view.kind(a);
    if (kind != view.kind(b)) return false;
    if (!is_groupable(kind)) return false;
    if (view.width(a) != view.width(b)) return false;
    if (kind == OpKind::Load || kind == OpKind::Store) {
        const Op& oa = view.kernel().op(view.node(a).lanes.front());
        const Op& ob = view.kernel().op(view.node(b).lanes.front());
        if (oa.array != ob.array) return false;
    }
    return true;
}

namespace {

/// Memory index of the first/last lane of a node (memory kinds only).
const Affine& first_index(const PackedView& view, int node) {
    return view.kernel().op(view.node(node).lanes.front()).index;
}
const Affine& last_index(const PackedView& view, int node) {
    return view.kernel().op(view.node(node).lanes.back()).index;
}

/// Orient a memory candidate so that, when the tail of `a` is adjacent to
/// the head of `b` (ascending addresses), lanes come out contiguous.
Candidate orient(const PackedView& view, int a, int b) {
    const OpKind kind = view.kind(a);
    if (kind == OpKind::Load || kind == OpKind::Store) {
        const auto fwd = first_index(view, b).constant_difference(
            last_index(view, a));
        if (fwd.has_value() && *fwd == 1) return Candidate{a, b};
        const auto rev = first_index(view, a).constant_difference(
            last_index(view, b));
        if (rev.has_value() && *rev == 1) return Candidate{b, a};
    }
    return Candidate{a, b};
}

}  // namespace

std::vector<Candidate> extract_candidates(const PackedView& view,
                                          const TargetModel& target) {
    std::vector<Candidate> out;
    for (int a = 0; a < view.size(); ++a) {
        for (int b = a + 1; b < view.size(); ++b) {
            if (!isomorphic(view, a, b)) continue;
            const int fused_width = view.width(a) + view.width(b);
            if (!target.supports_group_size(fused_width)) continue;
            if (!view.independent(a, b)) continue;
            out.push_back(orient(view, a, b));
        }
    }
    return out;
}

}  // namespace slpwlo
