#include "slp/plain_extractor.hpp"

namespace slpwlo {

SlpStats& SlpStats::operator+=(const SlpStats& other) {
    rounds += other.rounds;
    candidates_seen += other.candidates_seen;
    invalid_candidates += other.invalid_candidates;
    structural_conflicts += other.structural_conflicts;
    extra_conflicts += other.extra_conflicts;
    selected += other.selected;
    rejected_at_select += other.rejected_at_select;
    devirtualized += other.devirtualized;
    return *this;
}

std::vector<SimdGroup> extract_slp(PackedView& view, const TargetModel& target,
                                   const SlpOptions& options,
                                   const SlpHooks& hooks, SlpStats* stats) {
    SlpStats local;
    for (int round = 0; round < options.max_rounds; ++round) {
        if (hooks.round_begin) hooks.round_begin();
        std::vector<Candidate> candidates = extract_candidates(view, target);
        local.candidates_seen += static_cast<int>(candidates.size());

        if (hooks.candidate_valid) {
            std::vector<Candidate> valid;
            valid.reserve(candidates.size());
            for (const Candidate& c : candidates) {
                if (hooks.candidate_valid(c)) {
                    valid.push_back(c);
                } else {
                    local.invalid_candidates++;
                }
            }
            candidates = std::move(valid);
        }
        if (candidates.empty()) break;

        ConflictSet conflicts = detect_structural_conflicts(view, candidates);
        local.structural_conflicts += static_cast<int>(conflicts.pair_count());
        if (hooks.extra_conflict) {
            for (size_t i = 0; i < candidates.size(); ++i) {
                for (size_t j = i + 1; j < candidates.size(); ++j) {
                    if (conflicts.conflict(i, j)) continue;
                    if (hooks.extra_conflict(candidates[i], candidates[j])) {
                        conflicts.add(i, j);
                        local.extra_conflicts++;
                    }
                }
            }
        }

        std::vector<Candidate> selected =
            hooks.select_round
                ? hooks.select_round(std::move(candidates), conflicts,
                                     &local.rejected_at_select)
                : select_candidates(view, std::move(candidates), conflicts,
                                    target, options.benefit_mode,
                                    options.min_benefit, hooks.try_select,
                                    &local.rejected_at_select);
        if (hooks.round_finish) {
            selected = hooks.round_finish(std::move(selected));
        }
        if (selected.empty()) break;

        local.selected += static_cast<int>(selected.size());
        local.rounds++;
        std::vector<std::vector<int>> tuples;
        tuples.reserve(selected.size());
        for (const Candidate& c : selected) {
            tuples.push_back(c.nodes);
        }
        view.fuse(tuples);
    }

    // De-virtualize: a node stranded at a width the target cannot realize
    // (it was fused through a virtual intermediate width but never grew
    // into an implementable size) is not a SIMD group — split it back to
    // scalars so downstream passes only ever see realizable groups. Any
    // equation-(1) WL reductions its selections committed stay: they were
    // feasibility-checked, so the spec is merely narrower than it had to
    // be, never wrong.
    std::vector<int> stranded;
    for (int i = 0; i < view.size(); ++i) {
        if (view.width(i) >= 2 && !target.supports_group_size(view.width(i))) {
            stranded.push_back(i);
        }
    }
    local.devirtualized += static_cast<int>(stranded.size());
    view.split_to_scalars(stranded);

    if (stats != nullptr) *stats += local;
    return view.groups();
}

std::vector<SimdGroup> extract_slp_plain(PackedView& view,
                                         const TargetModel& target,
                                         const FixedPointSpec& spec,
                                         const SlpOptions& options,
                                         SlpStats* stats) {
    SlpHooks hooks;
    hooks.candidate_valid = [&view, &target, &spec](const Candidate& c) {
        // All elements of a group must have the same WL, and a SIMD
        // configuration must exist whose element slots hold that WL. A
        // virtual-width candidate is judged at its realization width —
        // the configuration its lanes will actually execute in.
        const std::vector<OpId> lanes = fused_lanes(view, c);
        const int wl = spec.result_format(lanes.front()).wl();
        for (const OpId lane : lanes) {
            if (spec.result_format(lane).wl() != wl) return false;
        }
        const auto slot_wl =
            target.realized_element_wl(static_cast<int>(lanes.size()));
        return slot_wl.has_value() && *slot_wl >= wl;
    };
    return extract_slp(view, target, options, hooks, stats);
}

}  // namespace slpwlo
