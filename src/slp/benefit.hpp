// Benefit estimation and iterative group selection
// (Fig. 1c "SIMD Groups Selection").
//
// The default benefit is the paper's (and Liu et al.'s): the ratio of the
// superword reuse a candidate enables to its packing/unpacking cost. The
// savings-only mode ignores reuse and is kept as an ablation
// (bench/ablation_benefit).
#pragma once

#include <functional>

#include "slp/conflict.hpp"
#include "slp/packing_cost.hpp"

namespace slpwlo {

enum class BenefitMode {
    ReuseOverCost,  ///< (1 + reuse) / (1 + pack + unpack), the paper's choice
    SavingsOnly,    ///< issues saved minus overhead ops, reuse-blind
};

/// Scalar benefit score under the chosen mode.
double benefit_score(const Economics& econ, BenefitMode mode);

/// Called before committing the most-beneficial candidate; returning false
/// drops the candidate instead of selecting it (used for the strict
/// accuracy-feasibility recheck).
using TrySelect = std::function<bool(const Candidate&)>;

/// Iteratively select the most beneficial candidate, eliminating
/// conflicting candidates after each selection, until none remain whose
/// benefit reaches `min_benefit` (the profitability floor: a candidate
/// whose packing/unpacking overhead swamps its reuse would degrade the
/// SIMD code, Section II.A). Deterministic: ties break on saved ops, then
/// on candidate order. Returns the selected candidates (pairs or k-lane
/// run seeds) in selection order.
std::vector<Candidate> select_candidates(
    const PackedView& view, std::vector<Candidate> candidates,
    const ConflictSet& conflicts, const TargetModel& target, BenefitMode mode,
    double min_benefit, const TrySelect& try_select, int* rejected_count);

}  // namespace slpwlo
