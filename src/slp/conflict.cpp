#include "slp/conflict.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

ConflictSet::ConflictSet(size_t candidate_count)
    : matrix_(candidate_count, std::vector<bool>(candidate_count, false)) {}

void ConflictSet::add(size_t i, size_t j) {
    SLPWLO_ASSERT(i < matrix_.size() && j < matrix_.size(),
                  "conflict index out of range");
    if (i == j || matrix_[i][j]) return;
    matrix_[i][j] = true;
    matrix_[j][i] = true;
    pairs_++;
}

bool ConflictSet::conflict(size_t i, size_t j) const {
    return matrix_[i][j];
}

bool shares_node(const Candidate& x, const Candidate& y) {
    return x.a == y.a || x.a == y.b || x.b == y.a || x.b == y.b;
}

bool cyclic_dependency(const PackedView& view, const Candidate& x,
                       const Candidate& y) {
    // Group X = {x.a, x.b}, group Y = {y.a, y.b}. A cycle arises when some
    // member of Y depends on a member of X and some member of X depends on
    // a member of Y.
    auto group_depends = [&view](int ga, int gb, int ha, int hb) {
        return view.depends(ga, ha) || view.depends(ga, hb) ||
               view.depends(gb, ha) || view.depends(gb, hb);
    };
    return group_depends(y.a, y.b, x.a, x.b) &&
           group_depends(x.a, x.b, y.a, y.b);
}

ConflictSet detect_structural_conflicts(
    const PackedView& view, const std::vector<Candidate>& candidates) {
    ConflictSet conflicts(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        for (size_t j = i + 1; j < candidates.size(); ++j) {
            if (shares_node(candidates[i], candidates[j]) ||
                cyclic_dependency(view, candidates[i], candidates[j])) {
                conflicts.add(i, j);
            }
        }
    }
    return conflicts;
}

}  // namespace slpwlo
