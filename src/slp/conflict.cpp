#include "slp/conflict.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

ConflictSet::ConflictSet(size_t candidate_count)
    : matrix_(candidate_count, std::vector<bool>(candidate_count, false)) {}

void ConflictSet::add(size_t i, size_t j) {
    SLPWLO_ASSERT(i < matrix_.size() && j < matrix_.size(),
                  "conflict index out of range");
    if (i == j || matrix_[i][j]) return;
    matrix_[i][j] = true;
    matrix_[j][i] = true;
    pairs_++;
}

bool ConflictSet::conflict(size_t i, size_t j) const {
    return matrix_[i][j];
}

bool shares_node(const Candidate& x, const Candidate& y) {
    for (const int xn : x.nodes) {
        for (const int yn : y.nodes) {
            if (xn == yn) return true;
        }
    }
    return false;
}

bool cyclic_dependency(const PackedView& view, const Candidate& x,
                       const Candidate& y) {
    // A cycle arises when some member of Y depends on a member of X and
    // some member of X depends on a member of Y.
    auto group_depends = [&view](const std::vector<int>& later,
                                 const std::vector<int>& earlier) {
        for (const int l : later) {
            for (const int e : earlier) {
                if (view.depends(l, e)) return true;
            }
        }
        return false;
    };
    return group_depends(y.nodes, x.nodes) && group_depends(x.nodes, y.nodes);
}

ConflictSet detect_structural_conflicts(
    const PackedView& view, const std::vector<Candidate>& candidates) {
    ConflictSet conflicts(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        for (size_t j = i + 1; j < candidates.size(); ++j) {
            if (shares_node(candidates[i], candidates[j]) ||
                cyclic_dependency(view, candidates[i], candidates[j])) {
                conflicts.add(i, j);
            }
        }
    }
    return conflicts;
}

}  // namespace slpwlo
