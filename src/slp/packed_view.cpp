#include "slp/packed_view.hpp"

#include <algorithm>
#include <map>

#include "support/diagnostics.hpp"

namespace slpwlo {

PackedView::PackedView(const Kernel& kernel, BlockId block)
    : kernel_(&kernel), block_(block), deps_(kernel, block) {
    const std::vector<OpId>& ops = kernel.block(block).ops;
    const int n = static_cast<int>(ops.size());

    position_.assign(kernel.ops().size(), -1);
    for (int pos = 0; pos < n; ++pos) {
        position_[static_cast<size_t>(ops[pos].index())] = pos;
    }

    // Per-position def-of-arg and consumer lists.
    def_of_arg_.assign(static_cast<size_t>(n), {OpId(), OpId()});
    consumers_.assign(static_cast<size_t>(n), {});
    external_use_.assign(static_cast<size_t>(n), false);

    std::map<VarId, int> last_def;  // var -> defining position
    for (int pos = 0; pos < n; ++pos) {
        const Op& op = kernel.op(ops[pos]);
        for (int a = 0; a < op.num_args(); ++a) {
            const auto it = last_def.find(op.args[a]);
            if (it != last_def.end()) {
                def_of_arg_[static_cast<size_t>(pos)][static_cast<size_t>(a)] =
                    ops[it->second];
                consumers_[static_cast<size_t>(it->second)].push_back(ops[pos]);
            }
        }
        if (op.dest.valid()) last_def[op.dest] = pos;
    }

    // A value escapes the view if its variable is read in another block or
    // is a user variable (loop-carried state, reductions); only the last
    // in-block definition of such a variable is live-out.
    std::vector<bool> read_elsewhere(kernel.vars().size(), false);
    for (const BlockId other : kernel.blocks_in_order()) {
        if (other == block) continue;
        for (const OpId op_id : kernel.block(other).ops) {
            const Op& op = kernel.op(op_id);
            for (int a = 0; a < op.num_args(); ++a) {
                read_elsewhere[static_cast<size_t>(op.args[a].index())] = true;
            }
        }
    }
    for (const auto& [var, pos] : last_def) {
        const bool escapes = !kernel.var(var).is_temp ||
                             read_elsewhere[static_cast<size_t>(var.index())];
        if (escapes) external_use_[static_cast<size_t>(pos)] = true;
    }

    // Initial view: one node per scalar op.
    nodes_.reserve(static_cast<size_t>(n));
    for (int pos = 0; pos < n; ++pos) {
        Node node;
        node.lanes = {ops[pos]};
        node.anchor = pos;
        nodes_.push_back(std::move(node));
    }
    rebuild_node_deps();
}

OpKind PackedView::kind(int i) const {
    return kernel_->op(node(i).lanes.front()).kind;
}

int PackedView::position_of(OpId op) const {
    const int pos = position_[static_cast<size_t>(op.index())];
    SLPWLO_ASSERT(pos >= 0, "op is not part of this block");
    return pos;
}

OpId PackedView::def_of_arg(OpId op, int arg) const {
    return def_of_arg_[static_cast<size_t>(position_of(op))]
                      [static_cast<size_t>(arg)];
}

const std::vector<OpId>& PackedView::consumers_of(OpId op) const {
    return consumers_[static_cast<size_t>(position_of(op))];
}

bool PackedView::has_external_uses(OpId op) const {
    return external_use_[static_cast<size_t>(position_of(op))];
}

bool PackedView::depends(int later, int earlier) const {
    return node_dep_[static_cast<size_t>(later)][static_cast<size_t>(earlier)];
}

bool PackedView::independent(int a, int b) const {
    if (a == b) return false;
    return !depends(a, b) && !depends(b, a);
}

bool PackedView::lanes_depend(const Node& a, const Node& b) const {
    for (const OpId la : a.lanes) {
        for (const OpId lb : b.lanes) {
            if (deps_.depends(position_of(la), position_of(lb))) return true;
        }
    }
    return false;
}

std::vector<std::vector<bool>> PackedView::full_node_deps() const {
    const int n = size();
    std::vector<std::vector<bool>> dep(
        static_cast<size_t>(n),
        std::vector<bool>(static_cast<size_t>(n), false));
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (i == j) continue;
            dep[static_cast<size_t>(i)][static_cast<size_t>(j)] =
                lanes_depend(nodes_[static_cast<size_t>(i)],
                             nodes_[static_cast<size_t>(j)]);
        }
    }
    return dep;
}

void PackedView::rebuild_node_deps() { node_dep_ = full_node_deps(); }

void PackedView::fuse(const std::vector<std::vector<int>>& tuples) {
    // Each pending node remembers which pre-fusion nodes it absorbs, so
    // the dependence matrix can be folded instead of rebuilt.
    struct Pending {
        Node node;
        std::vector<int> sources;
    };
    std::vector<bool> consumed(nodes_.size(), false);
    std::vector<Pending> next;
    next.reserve(nodes_.size());
    for (const std::vector<int>& tuple : tuples) {
        SLPWLO_ASSERT(tuple.size() >= 2, "fuse tuples need >= 2 nodes");
        Pending fused;
        fused.node.anchor = nodes_[static_cast<size_t>(tuple.front())].anchor;
        for (const int n : tuple) {
            SLPWLO_ASSERT(!consumed[static_cast<size_t>(n)],
                          "fuse tuples must be disjoint");
            consumed[static_cast<size_t>(n)] = true;
            const Node& node = nodes_[static_cast<size_t>(n)];
            fused.node.lanes.insert(fused.node.lanes.end(), node.lanes.begin(),
                                    node.lanes.end());
            fused.node.anchor = std::min(fused.node.anchor, node.anchor);
            fused.sources.push_back(n);
        }
        next.push_back(std::move(fused));
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (!consumed[i]) {
            next.push_back(
                Pending{std::move(nodes_[i]), {static_cast<int>(i)}});
        }
    }
    std::sort(next.begin(), next.end(), [](const Pending& x, const Pending& y) {
        return x.node.anchor < y.node.anchor;
    });

    // Incremental update: node_dep_ is an OR over lane pairs of the fixed
    // scalar closure, so a fused node's row/column is exactly the union
    // of its sources' — fold the old matrix through the index map, no
    // lane walks. (Same-source entries die on the diagonal: whether two
    // fused lanes depended on each other is internal to the group.)
    std::vector<size_t> to_new(nodes_.size(), 0);
    for (size_t I = 0; I < next.size(); ++I) {
        for (const int src : next[I].sources) {
            to_new[static_cast<size_t>(src)] = I;
        }
    }
    std::vector<std::vector<bool>> dep(
        next.size(), std::vector<bool>(next.size(), false));
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const std::vector<bool>& row = node_dep_[i];
        for (size_t j = 0; j < nodes_.size(); ++j) {
            if (row[j] && to_new[i] != to_new[j]) {
                dep[to_new[i]][to_new[j]] = true;
            }
        }
    }
    node_dep_ = std::move(dep);
    nodes_.clear();
    nodes_.reserve(next.size());
    for (Pending& pending : next) nodes_.push_back(std::move(pending.node));
}

void PackedView::split_to_scalars(const std::vector<int>& nodes) {
    if (nodes.empty()) return;
    std::vector<bool> split(nodes_.size(), false);
    for (const int n : nodes) {
        SLPWLO_ASSERT(n >= 0 && n < size(), "split index out of range");
        split[static_cast<size_t>(n)] = true;
    }
    struct Pending {
        Node node;
        size_t source;    // pre-split index
        bool from_split;  // one lane carved out of a split node
    };
    std::vector<Pending> next;
    next.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (!split[i]) {
            next.push_back(Pending{std::move(nodes_[i]), i, false});
            continue;
        }
        for (const OpId lane : nodes_[i].lanes) {
            Node scalar;
            scalar.lanes = {lane};
            scalar.anchor = position_of(lane);
            next.push_back(Pending{std::move(scalar), i, true});
        }
    }
    std::sort(next.begin(), next.end(), [](const Pending& x, const Pending& y) {
        return x.node.anchor < y.node.anchor;
    });

    // Incremental update: pairs of surviving nodes keep their entries
    // verbatim; only pairs touching a split-off scalar re-derive from the
    // scalar closure (the old aggregated entry over-approximates a single
    // lane, and two lanes of one former group may depend on each other).
    std::vector<std::vector<bool>> dep(
        next.size(), std::vector<bool>(next.size(), false));
    for (size_t I = 0; I < next.size(); ++I) {
        for (size_t J = 0; J < next.size(); ++J) {
            if (I == J) continue;
            if (!next[I].from_split && !next[J].from_split) {
                dep[I][J] = node_dep_[next[I].source][next[J].source];
            } else {
                dep[I][J] = lanes_depend(next[I].node, next[J].node);
            }
        }
    }
    node_dep_ = std::move(dep);
    nodes_.clear();
    nodes_.reserve(next.size());
    for (Pending& pending : next) nodes_.push_back(std::move(pending.node));
}

std::vector<SimdGroup> PackedView::groups() const {
    std::vector<SimdGroup> out;
    for (const Node& node : nodes_) {
        if (node.width() >= 2) {
            out.push_back(SimdGroup{node.lanes});
        }
    }
    return out;
}

}  // namespace slpwlo
