#include "slp/benefit.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace slpwlo {

double benefit_score(const Economics& econ, BenefitMode mode) {
    switch (mode) {
        case BenefitMode::ReuseOverCost:
            return (1.0 + econ.reuse) /
                   (1.0 + econ.pack_cost + econ.unpack_cost);
        case BenefitMode::SavingsOnly:
            return 2.0 * econ.saved_ops - (econ.pack_cost + econ.unpack_cost);
    }
    return 0.0;
}

std::vector<Candidate> select_candidates(
    const PackedView& view, std::vector<Candidate> candidates,
    const ConflictSet& conflicts, const TargetModel& target, BenefitMode mode,
    double min_benefit, const TrySelect& try_select, int* rejected_count) {
    std::vector<bool> alive(candidates.size(), true);

    std::vector<Candidate> selected;
    std::vector<Candidate> committed;
    int alive_count = static_cast<int>(candidates.size());

    while (alive_count > 0) {
        double best_score = 0.0;
        double best_saved = 0.0;
        size_t best = candidates.size();
        for (size_t i = 0; i < candidates.size(); ++i) {
            if (!alive[i]) continue;
            // Estimate against the candidates this selection could coexist
            // with: the alive non-conflicting ones plus the selections
            // already committed this round. Reuse promised by a candidate
            // that selecting `i` would eliminate is not real. The pool
            // holds pointers into the (stable) candidate/committed
            // vectors — rebuilding it per evaluation copies nothing.
            std::vector<const Candidate*> pool;
            pool.reserve(static_cast<size_t>(alive_count) + committed.size());
            for (size_t j = 0; j < candidates.size(); ++j) {
                if (alive[j] && !conflicts.conflict(i, j)) {
                    pool.push_back(&candidates[j]);
                }
            }
            for (const Candidate& d : committed) pool.push_back(&d);
            const Economics econ =
                evaluate_candidate(view, pool, candidates[i], target);
            const double score = benefit_score(econ, mode);
            const bool better =
                best == candidates.size() || score > best_score ||
                (score == best_score && econ.saved_ops > best_saved);
            if (better) {
                best = i;
                best_score = score;
                best_saved = econ.saved_ops;
            }
        }
        SLPWLO_ASSERT(best < candidates.size(), "no candidate selected");
        if (best_score < min_benefit) break;  // only unprofitable ones left

        alive[best] = false;
        alive_count--;

        if (try_select && !try_select(candidates[best])) {
            if (rejected_count != nullptr) (*rejected_count)++;
            continue;
        }
        selected.push_back(candidates[best]);
        committed.push_back(candidates[best]);

        // Eliminate everything in conflict with the selection.
        for (size_t i = 0; i < candidates.size(); ++i) {
            if (alive[i] && conflicts.conflict(best, i)) {
                alive[i] = false;
                alive_count--;
            }
        }
    }
    return selected;
}

}  // namespace slpwlo
