// PackedView: the working representation of a basic block during iterative
// SLP extraction.
//
// Each view node is either a scalar operation (one lane) or an SIMD group
// formed in an earlier round (2+ lanes). Extraction rounds pair up view
// nodes of equal width — fusing two pairs yields a width-4 group, which is
// the "extension of the groups size beyond 2" rewriting step of the paper
// (Fig. 1a line 11 / Section III.A).
//
// Dependences are maintained at node level (any lane of i depends on any
// lane of j), derived from the block's scalar dependence analysis.
#pragma once

#include <vector>

#include "ir/dependence.hpp"
#include "ir/kernel.hpp"

namespace slpwlo {

/// A selected SIMD group: >= 2 isomorphic scalar ops executed as one
/// instruction, lane order significant (it defines memory adjacency and
/// superword lane matching).
struct SimdGroup {
    std::vector<OpId> lanes;

    int width() const { return static_cast<int>(lanes.size()); }
};

class PackedView {
public:
    PackedView(const Kernel& kernel, BlockId block);

    struct Node {
        std::vector<OpId> lanes;
        /// Program-order anchor (position of the first lane in the block);
        /// used for deterministic ordering.
        int anchor = 0;

        int width() const { return static_cast<int>(lanes.size()); }
    };

    const Kernel& kernel() const { return *kernel_; }
    BlockId block() const { return block_; }

    int size() const { return static_cast<int>(nodes_.size()); }
    const Node& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
    OpKind kind(int i) const;
    int width(int i) const { return node(i).width(); }

    /// Node-level dependence: does node `later` transitively depend on node
    /// `earlier` through any lanes?
    bool depends(int later, int earlier) const;

    /// True if no dependence connects the two nodes in either direction.
    bool independent(int a, int b) const;

    /// Position of an op within the original block.
    int position_of(OpId op) const;

    /// Defining op of `op`'s argument `arg` within the block, or an invalid
    /// id when the value is live-in to the block.
    OpId def_of_arg(OpId op, int arg) const;

    /// Ops inside the block that read `op`'s destination before it is
    /// redefined (its in-block consumers).
    const std::vector<OpId>& consumers_of(OpId op) const;

    /// True if `op`'s destination is (or may be) read after the block or
    /// after a redefinition — i.e. its value has uses the view cannot see.
    bool has_external_uses(OpId op) const;

    /// Fuse the tuples selected in this round: each tuple (>= 2 distinct
    /// nodes) becomes one node whose lanes are the tuples' lanes in order
    /// — a pair for classic pairwise fusion, k nodes for a run-seeded
    /// k-lane group entering the view in one step. Tuples must be
    /// disjoint; indices refer to the pre-fusion view. Node dependences
    /// are updated incrementally: the matrix is an OR over lane pairs of
    /// the (fixed) scalar closure, so a fused node's row and column are
    /// exactly the union of its sources' — no lane walks, no O(n²·w²)
    /// rebuild per extraction round.
    void fuse(const std::vector<std::vector<int>>& tuples);

    /// Undo fusion of the given nodes: each becomes one width-1 node per
    /// lane again (anchored at the lane's block position). Used to
    /// de-virtualize groups stranded at a width the target cannot
    /// realize. Indices refer to the pre-split view. Dependences update
    /// incrementally: surviving pairs keep their entries, only rows and
    /// columns touching a split-off scalar re-derive from the scalar
    /// closure (the old aggregated entry over-approximates one lane).
    void split_to_scalars(const std::vector<int>& nodes);

    /// All groups formed so far (nodes with width >= 2), in anchor order.
    std::vector<SimdGroup> groups() const;

    /// Full recomputation of the node dependence matrix from the scalar
    /// closure — the reference the incremental fuse/split updates must
    /// reproduce bit for bit. Differential-test hook; the hot path only
    /// pays it once, at construction.
    std::vector<std::vector<bool>> full_node_deps() const;

private:
    bool lanes_depend(const Node& a, const Node& b) const;
    void rebuild_node_deps();

    const Kernel* kernel_;
    BlockId block_;
    BlockDeps deps_;
    std::vector<Node> nodes_;
    /// node_reach_[i][j]: node i depends on node j (transitively, via lanes).
    std::vector<std::vector<bool>> node_dep_;

    std::vector<int> position_;                    // op index -> block position
    std::vector<std::array<OpId, 2>> def_of_arg_;  // per position
    std::vector<std::vector<OpId>> consumers_;     // per position
    std::vector<bool> external_use_;               // per position
};

}  // namespace slpwlo
