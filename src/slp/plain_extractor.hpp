// The SLP extraction engine and the plain (accuracy-blind) extractor used
// by the WLO-First baseline.
//
// The engine implements the round structure shared by both extractors:
// extract candidates (pairs, through virtual widths when needed, plus
// k-lane run seeds on pair-cliff targets) -> filter -> detect conflicts
// -> iterative selection -> fuse selections into wider nodes -> repeat
// while groups form (Fig. 1a lines 6-14 + Fig. 1c). After the rounds,
// nodes stranded at a virtual width are split back to scalars, so only
// target-realizable groups ever leave the engine.
// The accuracy-aware behaviour of the paper's core algorithm is injected
// through SlpHooks by src/core/accuracy_aware_slp.
#pragma once

#include <functional>

#include "fixpoint/spec.hpp"
#include "slp/benefit.hpp"

namespace slpwlo {

struct SlpStats {
    int rounds = 0;
    int candidates_seen = 0;
    int invalid_candidates = 0;   ///< removed by the validity hook (accuracy)
    int structural_conflicts = 0;
    int extra_conflicts = 0;      ///< added by the conflict hook (accuracy)
    int selected = 0;
    int rejected_at_select = 0;   ///< vetoed by the selection hook
    /// Nodes stranded at a virtual (unrealizable) width at the end of
    /// extraction and split back to scalars.
    int devirtualized = 0;

    SlpStats& operator+=(const SlpStats& other);
};

struct SlpHooks {
    /// Fig. 1c lines 6-12: may a candidate be implemented at all?
    std::function<bool(const Candidate&)> candidate_valid;
    /// Fig. 1c lines 16-21: extra (accuracy) conflicts between candidates
    /// that are not structurally conflicting.
    std::function<bool(const Candidate&, const Candidate&)> extra_conflict;
    /// Fig. 1c line 34 (+ strict feasibility): commit the candidate's WL
    /// reduction; returning false drops it.
    std::function<bool(const Candidate&)> try_select;
    /// When set, replaces the greedy per-round selection entirely (the
    /// `SLP-Optimal` flow plugs the exact solver in here): receives the
    /// round's valid candidates and the full conflict set (structural +
    /// extra) and returns the selected subset with every selection's WL
    /// commitment already applied. The int* accumulates selection-time
    /// rejections, like select_candidates' rejected_count.
    std::function<std::vector<Candidate>(std::vector<Candidate>,
                                         const ConflictSet&, int*)>
        select_round;
    /// Called when a round starts (spec checkpointing).
    std::function<void()> round_begin;
    /// Called with the round's selection before fusing; may filter it
    /// (demoting stranded candidates) and adjust the spec accordingly.
    std::function<std::vector<Candidate>(std::vector<Candidate>)> round_finish;
};

struct SlpOptions {
    /// Safety bound on widening rounds (each round at least doubles group
    /// width, so 6 covers any realistic SIMD).
    int max_rounds = 6;
    BenefitMode benefit_mode = BenefitMode::ReuseOverCost;
    /// Profitability floor: stop selecting once the best remaining
    /// candidate's benefit drops below this (0 reproduces the paper's
    /// filter-free behaviour, see the CONV discussion in Section V.D).
    double min_benefit = 0.75;
};

/// Run extraction rounds on `view`, which is left in its final packed state
/// (callers can inspect it for scaling optimization).
std::vector<SimdGroup> extract_slp(PackedView& view, const TargetModel& target,
                                   const SlpOptions& options,
                                   const SlpHooks& hooks = {},
                                   SlpStats* stats = nullptr);

/// The WLO-First baseline extractor: plain Liu-style SLP whose only
/// word-length awareness is the legality rule that all elements of a group
/// carry the same WL and fit a supported SIMD configuration. It never
/// consults an accuracy evaluator and never changes the spec.
std::vector<SimdGroup> extract_slp_plain(PackedView& view,
                                         const TargetModel& target,
                                         const FixedPointSpec& spec,
                                         const SlpOptions& options = {},
                                         SlpStats* stats = nullptr);

}  // namespace slpwlo
