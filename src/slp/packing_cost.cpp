#include "slp/packing_cost.hpp"

#include <algorithm>

namespace slpwlo {

std::vector<OpId> fused_lanes(const PackedView& view, const Candidate& c) {
    std::vector<OpId> lanes;
    for (const int n : c.nodes) {
        const auto& more = view.node(n).lanes;
        lanes.insert(lanes.end(), more.begin(), more.end());
    }
    return lanes;
}

bool lanes_memory_adjacent(const PackedView& view,
                           const std::vector<OpId>& lanes) {
    const Kernel& kernel = view.kernel();
    const Op& first = kernel.op(lanes.front());
    if (!first.is_memory()) return false;
    for (size_t i = 1; i < lanes.size(); ++i) {
        const Op& op = kernel.op(lanes[i]);
        if (op.array != first.array) return false;
        const auto diff =
            op.index.constant_difference(kernel.op(lanes[i - 1]).index);
        if (!diff.has_value() || *diff != 1) return false;
    }
    return true;
}

std::vector<OpId> operand_defs(const PackedView& view,
                               const std::vector<OpId>& lanes, int slot) {
    std::vector<OpId> defs;
    defs.reserve(lanes.size());
    for (const OpId lane : lanes) {
        const OpId def = view.def_of_arg(lane, slot);
        if (!def.valid()) return {};
        defs.push_back(def);
    }
    return defs;
}

namespace {

enum class SuperwordMatch { No, Direct, Reversed };

/// Does some candidate or existing group produce exactly `defs` — in lane
/// order (Direct) or in reverse (Reversed, realizable with one vector
/// permute; the FIR convolution's x-descending / c-ascending pattern)?
/// A load producer only counts when its lanes are memory-adjacent: a
/// gathered (non-contiguous) load group merely relocates the packing cost,
/// it does not produce a free superword.
SuperwordMatch producible_as_superword(
    const PackedView& view, const std::vector<const Candidate*>& available,
    const std::vector<OpId>& defs) {
    if (defs.empty()) return SuperwordMatch::No;
    std::vector<OpId> reversed(defs.rbegin(), defs.rend());

    auto usable = [&view](const std::vector<OpId>& producer_lanes) {
        if (view.kernel().op(producer_lanes.front()).kind != OpKind::Load) {
            return true;
        }
        return lanes_memory_adjacent(view, producer_lanes);
    };

    for (const Candidate* c : available) {
        const std::vector<OpId> lanes = fused_lanes(view, *c);
        if (lanes == defs && usable(lanes)) return SuperwordMatch::Direct;
        if (lanes == reversed && usable(lanes)) return SuperwordMatch::Reversed;
    }
    for (int i = 0; i < view.size(); ++i) {
        if (view.width(i) < 2) continue;
        const std::vector<OpId>& lanes = view.node(i).lanes;
        if (lanes == defs && usable(lanes)) return SuperwordMatch::Direct;
        if (lanes == reversed && usable(lanes)) return SuperwordMatch::Reversed;
    }
    return SuperwordMatch::No;
}

/// True if every lane reads the same live-in variable (splat).
bool is_splat(const PackedView& view, const std::vector<OpId>& lanes,
              int slot) {
    const Kernel& kernel = view.kernel();
    const VarId first = kernel.op(lanes.front()).args[slot];
    for (const OpId lane : lanes) {
        if (view.def_of_arg(lane, slot).valid()) return false;
        if (kernel.op(lane).args[slot] != first) return false;
    }
    return true;
}

}  // namespace

Economics evaluate_candidate(const PackedView& view,
                             const std::vector<Candidate>& available,
                             const Candidate& c, const TargetModel& target) {
    std::vector<const Candidate*> pool;
    pool.reserve(available.size());
    for (const Candidate& a : available) pool.push_back(&a);
    return evaluate_candidate(view, pool, c, target);
}

Economics evaluate_candidate(const PackedView& view,
                             const std::vector<const Candidate*>& available,
                             const Candidate& c, const TargetModel& target) {
    Economics econ;
    // n node issues become one (1.0 for a pair; a k-lane run seed saves
    // k - 1 issues in one step).
    econ.saved_ops = static_cast<double>(c.node_count() - 1);
    const Kernel& kernel = view.kernel();
    const std::vector<OpId> lanes = fused_lanes(view, c);
    const int w = static_cast<int>(lanes.size());
    const OpKind kind = view.kind(c.nodes.front());

    if (kind == OpKind::Load || kind == OpKind::Store) {
        if (!lanes_memory_adjacent(view, lanes)) {
            // Gather/scatter: synthesize the vector (or tear it apart)
            // lane by lane.
            econ.pack_cost += (w - 1) * target.pack2_ops;
        }
    }

    // Operand superwords of arithmetic ops and the stored value of stores.
    const int slots = kernel.op(lanes.front()).num_args();
    for (int slot = 0; slot < slots; ++slot) {
        // acc = acc + p: the operand is the group's own previous-iteration
        // result, held in a vector register — a reuse, not a pack.
        const bool self_accumulation = std::all_of(
            lanes.begin(), lanes.end(), [&](OpId lane) {
                const Op& op = kernel.op(lane);
                return op.dest.valid() && op.args[slot] == op.dest &&
                       !view.def_of_arg(lane, slot).valid();
            });
        if (self_accumulation) {
            econ.reuse += 1.0;
            continue;
        }
        const std::vector<OpId> defs = operand_defs(view, lanes, slot);
        switch (producible_as_superword(view, available, defs)) {
            case SuperwordMatch::Direct:
                econ.reuse += 1.0;
                break;
            case SuperwordMatch::Reversed:
                econ.reuse += 1.0;
                econ.pack_cost += 1.0;  // one vector permute
                break;
            case SuperwordMatch::No:
                if (!defs.empty() && lanes_memory_adjacent(view, defs)) {
                    // Loads that could be vectorized even w/o a candidate.
                    econ.reuse += 0.5;
                } else if (is_splat(view, lanes, slot)) {
                    econ.pack_cost += 1.0;
                } else {
                    econ.pack_cost += (w - 1) * target.pack2_ops;
                }
                break;
        }
    }

    // Result side (stores produce no value).
    if (kind != OpKind::Store) {
        // A consuming candidate whose operand lanes match c's lanes turns
        // the result into a reused superword. A self-accumulating group
        // consumes its own result in the next iteration.
        bool consumed_as_superword = false;
        for (int slot = 0; slot < slots && !consumed_as_superword; ++slot) {
            consumed_as_superword = std::all_of(
                lanes.begin(), lanes.end(), [&](OpId lane) {
                    const Op& op = kernel.op(lane);
                    return op.dest.valid() && op.args[slot] == op.dest;
                });
        }
        const std::vector<OpId> lanes_reversed(lanes.rbegin(), lanes.rend());
        for (const Candidate* d : available) {
            if (*d == c) continue;
            const std::vector<OpId> dl = fused_lanes(view, *d);
            const int dslots = kernel.op(dl.front()).num_args();
            for (int slot = 0; slot < dslots; ++slot) {
                const std::vector<OpId> defs = operand_defs(view, dl, slot);
                if (defs == lanes || defs == lanes_reversed) {
                    econ.reuse += 1.0;
                    consumed_as_superword = true;
                }
            }
        }
        if (!consumed_as_superword) {
            for (const OpId lane : lanes) {
                if (!view.consumers_of(lane).empty() ||
                    view.has_external_uses(lane)) {
                    econ.unpack_cost += target.extract_ops;
                }
            }
        }
    }

    return econ;
}

}  // namespace slpwlo
