// SIMD group candidate extraction (Fig. 1c "Candidates Extraction").
//
// A candidate is a pair of isomorphic, independent view nodes of equal
// width whose fusion the target can implement (equation 1 must have a
// solution for the combined lane count). For loads/stores, isomorphism
// additionally requires the same array — mixed-array vectors have no
// memory-instruction realization.
#pragma once

#include <vector>

#include "slp/packed_view.hpp"
#include "target/target_model.hpp"

namespace slpwlo {

struct Candidate {
    /// View-node indices; the fused lane order is lanes(a) then lanes(b).
    int a = -1;
    int b = -1;

    friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// True if `kind` participates in SIMD grouping at all.
bool is_groupable(OpKind kind);

/// True if nodes (a, b) are isomorphic: same groupable kind, same array for
/// memory ops, equal widths.
bool isomorphic(const PackedView& view, int a, int b);

/// All candidates in the current view. Load/store pairs are oriented so
/// that ascending-adjacent memory indices come out in lane order when
/// possible; other pairs are oriented by program order. Deterministic.
std::vector<Candidate> extract_candidates(const PackedView& view,
                                          const TargetModel& target);

}  // namespace slpwlo
