// SIMD group candidate extraction (Fig. 1c "Candidates Extraction").
//
// A candidate is a tuple of isomorphic, independent view nodes of equal
// width whose fusion the target can realize. Two seeding paths produce
// them:
//
//  * pairwise fusion (the paper's Fig. 1c): two nodes combine when the
//    fused lane count is implementable (equation 1 has a solution) — or
//    when it is a *virtual* intermediate width, i.e. not implementable
//    itself but able to keep doubling into an implementable size. Virtual
//    widths are what let pairwise fusion climb a datapath whose smallest
//    configuration is wider than 2 lanes; packing cost is only charged at
//    realization (the lowering layer never sees a virtual group — the
//    extraction engine splits unrealized nodes back to scalars).
//  * k-lane run seeding (Larsen & Amarasinghe's adjacent-memory seeds):
//    on targets with no 2-lane configuration, maximal runs of adjacent
//    memory operations seed k-lane groups directly for every lane count
//    the target admits. Run seeding is deliberately inert on targets that
//    can pair — it adds no candidates there, and on gap-free
//    configuration sets (every shipped preset) virtual widths change
//    nothing either, so existing-preset results are unchanged — and
//    every seed still competes through the same benefit gate as a
//    pairwise candidate.
//
// For loads/stores, isomorphism additionally requires the same array —
// mixed-array vectors have no memory-instruction realization.
#pragma once

#include <vector>

#include "slp/packed_view.hpp"
#include "target/target_model.hpp"

namespace slpwlo {

struct Candidate {
    /// View-node indices; the fused lane order is lanes(nodes[0]),
    /// lanes(nodes[1]), ... Pairwise candidates have exactly two nodes,
    /// run seeds have one per lane of the seeded group.
    std::vector<int> nodes;

    Candidate() = default;
    Candidate(int a, int b) : nodes{a, b} {}
    explicit Candidate(std::vector<int> nodes_) : nodes(std::move(nodes_)) {}

    int node_count() const { return static_cast<int>(nodes.size()); }

    friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// True if `kind` participates in SIMD grouping at all.
bool is_groupable(OpKind kind);

/// True if nodes (a, b) are isomorphic: same groupable kind, same array for
/// memory ops, equal widths.
bool isomorphic(const PackedView& view, int a, int b);

/// A maximal run of adjacent memory operations: width-1 view nodes of one
/// kind on one array whose indices ascend by exactly 1, all mutually
/// independent. `nodes` is in ascending address order.
struct MemoryRun {
    std::vector<int> nodes;

    int length() const { return static_cast<int>(nodes.size()); }
};

/// All maximal adjacent-memory runs of length >= 2 in the current view,
/// ordered by their first node. Deterministic.
std::vector<MemoryRun> find_memory_runs(const PackedView& view);

/// k-lane seed candidates from the view's memory runs: for every lane
/// count k the target admits (equation 1 solvable), each run is chopped
/// into non-overlapping k-lane chunks from its start. Only active on
/// targets with no 2-lane configuration (the pair-seeding cliff);
/// returns nothing otherwise.
std::vector<Candidate> seed_runs(const PackedView& view,
                                 const TargetModel& target);

/// All candidates in the current view: every isomorphic, independent pair
/// whose fused width the target can realize (directly or through virtual
/// widths), plus the k-lane run seeds on cliff targets. Load/store pairs
/// are oriented so that ascending-adjacent memory indices come out in
/// lane order when possible; other pairs are oriented by program order.
/// Deterministic.
std::vector<Candidate> extract_candidates(const PackedView& view,
                                          const TargetModel& target);

}  // namespace slpwlo
