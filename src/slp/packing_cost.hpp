// Candidate economics: superword reuse and packing/unpacking cost
// (the Liu-style benefit inputs, Section II.A / III.B).
//
// For a candidate (the tentative fusion of two view nodes), we analyze:
//  * memory adjacency — contiguous loads/stores become one vector access,
//    anything else needs per-lane packing/extraction;
//  * operand superwords — an operand vector is free when another candidate
//    (or an already-formed group) produces exactly those lanes in order,
//    cheap when it is a splat, and otherwise costs pack operations;
//  * result use — a result consumed lane-by-lane by scalar code costs
//    extraction; consumed by a matching candidate it is a reuse.
#pragma once

#include <vector>

#include "slp/candidate.hpp"

namespace slpwlo {

struct Economics {
    /// Superword reuses enabled by selecting this candidate (operand vectors
    /// produced by other candidates/groups + consumers that can take the
    /// result as a superword).
    double reuse = 0.0;
    /// ALU ops to assemble operand vectors that are not reusable.
    double pack_cost = 0.0;
    /// ALU ops to extract lanes consumed by scalar code.
    double unpack_cost = 0.0;
    /// Instruction issues saved by fusing (one per fusion).
    double saved_ops = 0.0;
};

/// The fused lane list of a candidate: lanes(a) followed by lanes(b).
std::vector<OpId> fused_lanes(const PackedView& view, const Candidate& c);

/// True if the lanes are loads/stores of consecutive elements (ascending,
/// constant step 1) of one array.
bool lanes_memory_adjacent(const PackedView& view,
                           const std::vector<OpId>& lanes);

/// In-block defining ops of each lane's operand `slot`; empty if any lane's
/// operand is live-in to the block.
std::vector<OpId> operand_defs(const PackedView& view,
                               const std::vector<OpId>& lanes, int slot);

/// Economics of candidate `c` given the other candidates still available.
Economics evaluate_candidate(const PackedView& view,
                             const std::vector<Candidate>& available,
                             const Candidate& c, const TargetModel& target);

/// Pointer-pool variant for the selection hot loop: `available` holds
/// non-owning pointers into stable candidate storage, so rebuilding the
/// pool per evaluation copies no lane vectors.
Economics evaluate_candidate(const PackedView& view,
                             const std::vector<const Candidate*>& available,
                             const Candidate& c, const TargetModel& target);

}  // namespace slpwlo
