// Structural conflict detection between SIMD group candidates
// (Fig. 1c "Conflicts Detection", the Liu et al. part).
//
// Two candidates conflict when they share a view node (an operation can be
// in only one group) or when selecting both would create a cyclic
// dependency between the two groups (each group depends on a member of the
// other). Accuracy conflicts — the paper's extension — are added on top by
// the accuracy-aware extractor in src/core.
#pragma once

#include <vector>

#include "slp/candidate.hpp"

namespace slpwlo {

class ConflictSet {
public:
    explicit ConflictSet(size_t candidate_count);

    void add(size_t i, size_t j);
    bool conflict(size_t i, size_t j) const;

    /// Number of conflicting pairs recorded.
    size_t pair_count() const { return pairs_; }

    bool any() const { return pairs_ > 0; }

private:
    std::vector<std::vector<bool>> matrix_;
    size_t pairs_ = 0;
};

/// True if candidates share a view node (any member of x is a member
/// of y).
bool shares_node(const Candidate& x, const Candidate& y);

/// True if selecting both candidates creates a cyclic dependency: some
/// member of y depends on a member of x and vice versa.
bool cyclic_dependency(const PackedView& view, const Candidate& x,
                       const Candidate& y);

/// All structural conflicts among `candidates`.
ConflictSet detect_structural_conflicts(const PackedView& view,
                                        const std::vector<Candidate>& candidates);

}  // namespace slpwlo
