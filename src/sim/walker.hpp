// Shared kernel-execution walker.
//
// Walks the loop nest in execution order, maintaining current loop-variable
// values, and invokes the visitor for every dynamic op instance. Both
// simulators and the gain analyzer are built on this.
#pragma once

#include <vector>

#include "ir/kernel.hpp"

namespace slpwlo {

/// Evaluate an affine index against loop values indexed by LoopId.
inline int evaluate_affine(const Affine& index,
                           const std::vector<int>& loop_values) {
    int result = index.offset();
    for (const auto& [loop, coeff] : index.coeffs()) {
        result += coeff * loop_values[static_cast<size_t>(loop.index())];
    }
    return result;
}

/// Visitor signature: void(OpId op, const std::vector<int>& loop_values).
template <class Visitor>
void walk_kernel(const Kernel& kernel, Visitor&& visit) {
    std::vector<int> loop_values(kernel.loops().size(), 0);

    struct Walker {
        const Kernel& kernel;
        std::vector<int>& loop_values;
        Visitor& visit;

        void region(const Region& r) {
            for (const RegionItem& item : r.items) {
                if (item.kind == RegionItem::Kind::Block) {
                    for (const OpId op : kernel.block(item.block).ops) {
                        visit(op, loop_values);
                    }
                } else {
                    const Loop& loop = kernel.loop(item.loop);
                    int& value = loop_values[static_cast<size_t>(loop.id.index())];
                    for (value = loop.begin; value < loop.end; ++value) {
                        region(loop.body);
                    }
                }
            }
        }
    };

    Walker walker{kernel, loop_values, visit};
    walker.region(kernel.body());
}

}  // namespace slpwlo
