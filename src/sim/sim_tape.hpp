// SimTape: a kernel compiled to a flat execution tape.
//
// Compilation walks the loop nest once (sim/walker.hpp), unrolling it into
// a linear sequence of dynamic op instances with every affine index already
// resolved to a concrete element address. Replaying the tape is a single
// branch-predictable loop over a contiguous array — no recursive region
// descent, no loop bookkeeping, no per-instance affine evaluation — which
// is what makes simulation-backed noise evaluation cheap enough for hot
// loops (see bench/perf_hotpaths.cpp).
//
// Replays are bit-identical to the walker-based run_double/run_fixed: the
// steps execute in the same order with the same arithmetic, injections
// match by the same per-static-op occurrence counters, and range recording
// applies the same hulls. The walker entry points survive as
// run_double_walker/run_fixed_walker so tests (and the bench) can diff the
// two implementations.
#pragma once

#include <cstdint>

#include "fixpoint/spec.hpp"
#include "sim/fixed_sim.hpp"

namespace slpwlo {

/// One dynamic op instance. `op` is the static op (occurrence matching,
/// format lookup); `addr` is the resolved element index for Load/Store.
struct TapeStep {
    OpKind kind = OpKind::Const;
    int32_t op = -1;
    int32_t dest = -1;   ///< destination var (all but Store)
    int32_t arg0 = -1;   ///< operand vars (-1 when unused)
    int32_t arg1 = -1;
    int32_t array = -1;  ///< Load/Store array
    int32_t addr = -1;   ///< Load/Store resolved element address
    double const_value = 0.0;
    bool output = false;  ///< Store to an Output array
};

class SimTape {
public:
    /// Compile `kernel` (one walk of the loop nest).
    explicit SimTape(const Kernel& kernel);

    const Kernel& kernel() const { return *kernel_; }
    const std::vector<TapeStep>& steps() const { return steps_; }
    /// Number of Output-array stores per replay (output trace length).
    size_t output_count() const { return output_count_; }

private:
    const Kernel* kernel_;
    std::vector<TapeStep> steps_;
    size_t output_count_ = 0;
};

/// Tape replays of the two simulators; bit-identical to the walker runs.
DoubleSimResult run_double(const SimTape& tape, const Stimulus& stimulus,
                           const DoubleSimOptions& options = {});
FixedSimResult run_fixed(const SimTape& tape, const FixedPointSpec& spec,
                         const Stimulus& stimulus);

/// Measured noise power against a precomputed reference trace (the cached
/// double replay of the same stimulus) — one fixed-point replay per call.
double measure_noise_power(const SimTape& tape, const FixedPointSpec& spec,
                           const Stimulus& stimulus,
                           const std::vector<double>& ref_outputs);

}  // namespace slpwlo
