// Bit-accurate fixed-point simulator.
//
// Executes the kernel under a FixedPointSpec, modelling exactly what the
// generated fixed-point C code computes: operand alignment to the result
// FWL before add/sub (the scaling shifts), product quantization after mul,
// saturation to each node's representable range, and storage quantization.
//
// Values are represented as doubles that are exact multiples of 2^-fwl;
// for the word lengths this library targets (<= 32 bits) this is exact.
//
// Used to cross-validate the analytical accuracy model and to verify that
// IWL determination prevents overflow (overflow_count should stay 0).
#pragma once

#include "fixpoint/spec.hpp"
#include "sim/double_sim.hpp"

namespace slpwlo {

struct FixedSimResult {
    /// Values stored to Output arrays, in execution order.
    std::vector<double> outputs;
    /// Number of saturation events across the run.
    long long overflow_count = 0;
};

/// Fixed-point simulation. Compiles the kernel to a SimTape and replays it;
/// callers with many runs over one kernel should compile the tape once and
/// use the run_fixed(SimTape, ...) overload (sim/sim_tape.hpp).
FixedSimResult run_fixed(const Kernel& kernel, const FixedPointSpec& spec,
                         const Stimulus& stimulus);

/// The original recursive-walker implementation, kept as a differential
/// reference for the tape replay (tests, bench/perf_hotpaths).
FixedSimResult run_fixed_walker(const Kernel& kernel,
                                const FixedPointSpec& spec,
                                const Stimulus& stimulus);

/// Mean squared error between the fixed-point outputs and the double
/// reference outputs for the same stimulus — the measured noise power.
double measure_noise_power(const Kernel& kernel, const FixedPointSpec& spec,
                           const Stimulus& stimulus);

}  // namespace slpwlo
