#include "sim/double_sim.hpp"

#include <algorithm>

#include "sim/sim_tape.hpp"
#include "sim/walker.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {

Stimulus make_stimulus(const Kernel& kernel, uint64_t seed) {
    Stimulus stimulus(kernel.arrays().size());
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        if (decl.storage != StorageClass::Input) continue;
        Rng rng(seed, "stimulus/" + decl.name);
        auto& values = stimulus[a];
        values.resize(static_cast<size_t>(decl.size));
        for (double& v : values) {
            v = rng.uniform(decl.declared_range.lo(), decl.declared_range.hi());
        }
    }
    return stimulus;
}

DoubleSimResult run_double(const Kernel& kernel, const Stimulus& stimulus,
                           const DoubleSimOptions& options) {
    return run_double(SimTape(kernel), stimulus, options);
}

DoubleSimResult run_double_walker(const Kernel& kernel,
                                  const Stimulus& stimulus,
                                  const DoubleSimOptions& options) {
    // Memory image.
    std::vector<std::vector<double>> mem(kernel.arrays().size());
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        mem[a].assign(static_cast<size_t>(decl.size), 0.0);
        if (decl.storage == StorageClass::Input) {
            SLPWLO_CHECK(a < stimulus.size() &&
                             stimulus[a].size() == mem[a].size(),
                         "stimulus missing or mis-sized for input array `" +
                             decl.name + "`");
            mem[a] = stimulus[a];
        } else if (decl.storage == StorageClass::Param) {
            mem[a] = decl.values;
        }
    }

    for (const auto& inj : options.array_injections) {
        auto& elements = mem[static_cast<size_t>(inj.array.index())];
        SLPWLO_CHECK(inj.element >= 0 &&
                         inj.element < static_cast<int>(elements.size()),
                     "array injection element out of bounds");
        elements[static_cast<size_t>(inj.element)] += inj.delta;
    }

    std::vector<double> vars(kernel.vars().size(), 0.0);
    std::vector<long long> occurrence(kernel.ops().size(), 0);

    // Injections sorted per op for O(1) matching (few injections in practice).
    std::vector<std::vector<const DoubleSimOptions::Injection*>> inj_by_op(
        kernel.ops().size());
    for (const auto& inj : options.injections) {
        inj_by_op[static_cast<size_t>(inj.op.index())].push_back(&inj);
    }

    DoubleSimResult result;
    if (options.record_ranges) {
        result.var_ranges.assign(kernel.vars().size(), Interval::empty());
        result.array_ranges.assign(kernel.arrays().size(), Interval::empty());
        for (size_t a = 0; a < kernel.arrays().size(); ++a) {
            // Initial contents participate in the array's value range.
            for (const double v : mem[a]) {
                result.array_ranges[a] =
                    result.array_ranges[a].hull(Interval(v));
            }
        }
    }

    walk_kernel(kernel, [&](OpId op_id, const std::vector<int>& loop_values) {
        const Op& op = kernel.op(op_id);
        const size_t oi = static_cast<size_t>(op_id.index());

        double value = 0.0;
        switch (op.kind) {
            case OpKind::Const:
                value = op.const_value;
                break;
            case OpKind::Copy:
                value = vars[op.args[0].index()];
                break;
            case OpKind::Neg:
                value = -vars[op.args[0].index()];
                break;
            case OpKind::Add:
                value = vars[op.args[0].index()] + vars[op.args[1].index()];
                break;
            case OpKind::Sub:
                value = vars[op.args[0].index()] - vars[op.args[1].index()];
                break;
            case OpKind::Mul:
                value = vars[op.args[0].index()] * vars[op.args[1].index()];
                break;
            case OpKind::Div:
                value = vars[op.args[0].index()] / vars[op.args[1].index()];
                break;
            case OpKind::Load: {
                const int idx = evaluate_affine(op.index, loop_values);
                value = mem[op.array.index()][static_cast<size_t>(idx)];
                break;
            }
            case OpKind::Store:
                value = vars[op.args[0].index()];
                break;
        }

        for (const auto* inj : inj_by_op[oi]) {
            if (inj->occurrence == occurrence[oi]) value += inj->delta;
        }
        occurrence[oi]++;

        if (op.kind == OpKind::Store) {
            const int idx = evaluate_affine(op.index, loop_values);
            mem[op.array.index()][static_cast<size_t>(idx)] = value;
            const ArrayDecl& decl = kernel.array(op.array);
            if (decl.storage == StorageClass::Output) {
                result.outputs.push_back(value);
            }
            if (options.record_ranges) {
                auto& hull = result.array_ranges[op.array.index()];
                hull = hull.hull(Interval(value));
            }
        } else {
            vars[op.dest.index()] = value;
            if (options.record_ranges) {
                auto& hull = result.var_ranges[op.dest.index()];
                hull = hull.hull(Interval(value));
            }
        }
    });

    return result;
}

}  // namespace slpwlo
