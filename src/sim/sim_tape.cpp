#include "sim/sim_tape.hpp"

#include <cmath>

#include "sim/walker.hpp"
#include "support/dbmath.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {

namespace {

/// Build the initial memory image shared by both replays (unquantized).
std::vector<std::vector<double>> initial_memory(const Kernel& kernel,
                                                const Stimulus& stimulus) {
    std::vector<std::vector<double>> mem(kernel.arrays().size());
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        mem[a].assign(static_cast<size_t>(decl.size), 0.0);
        if (decl.storage == StorageClass::Input) {
            SLPWLO_CHECK(a < stimulus.size() &&
                             stimulus[a].size() == mem[a].size(),
                         "stimulus missing or mis-sized for input array `" +
                             decl.name + "`");
            mem[a] = stimulus[a];
        } else if (decl.storage == StorageClass::Param) {
            mem[a] = decl.values;
        }
    }
    return mem;
}

}  // namespace

SimTape::SimTape(const Kernel& kernel) : kernel_(&kernel) {
    walk_kernel(kernel, [&](OpId op_id, const std::vector<int>& loop_values) {
        const Op& op = kernel.op(op_id);
        TapeStep step;
        step.kind = op.kind;
        step.op = op_id.value;
        step.const_value = op.const_value;
        if (op.kind == OpKind::Store) {
            step.arg0 = op.args[0].value;
            step.array = op.array.value;
            step.addr = evaluate_affine(op.index, loop_values);
            step.output =
                kernel.array(op.array).storage == StorageClass::Output;
            if (step.output) output_count_++;
        } else {
            step.dest = op.dest.value;
            if (op.kind == OpKind::Load) {
                step.array = op.array.value;
                step.addr = evaluate_affine(op.index, loop_values);
            } else {
                if (op.num_args() >= 1) step.arg0 = op.args[0].value;
                if (op.num_args() >= 2) step.arg1 = op.args[1].value;
            }
        }
        steps_.push_back(step);
    });
}

DoubleSimResult run_double(const SimTape& tape, const Stimulus& stimulus,
                           const DoubleSimOptions& options) {
    const Kernel& kernel = tape.kernel();
    std::vector<std::vector<double>> mem = initial_memory(kernel, stimulus);

    for (const auto& inj : options.array_injections) {
        auto& elements = mem[static_cast<size_t>(inj.array.index())];
        SLPWLO_CHECK(inj.element >= 0 &&
                         inj.element < static_cast<int>(elements.size()),
                     "array injection element out of bounds");
        elements[static_cast<size_t>(inj.element)] += inj.delta;
    }

    std::vector<double> vars(kernel.vars().size(), 0.0);

    // Injections are matched by per-static-op occurrence counters, exactly
    // as the walker does. The counters (and the per-op injection lists) are
    // only materialized when injections exist, keeping the plain replay at
    // a single loop over the steps.
    const bool has_injections = !options.injections.empty();
    std::vector<long long> occurrence;
    std::vector<std::vector<const DoubleSimOptions::Injection*>> inj_by_op;
    if (has_injections) {
        occurrence.assign(kernel.ops().size(), 0);
        inj_by_op.resize(kernel.ops().size());
        for (const auto& inj : options.injections) {
            inj_by_op[static_cast<size_t>(inj.op.index())].push_back(&inj);
        }
    }

    DoubleSimResult result;
    result.outputs.reserve(tape.output_count());
    if (options.record_ranges) {
        result.var_ranges.assign(kernel.vars().size(), Interval::empty());
        result.array_ranges.assign(kernel.arrays().size(), Interval::empty());
        for (size_t a = 0; a < kernel.arrays().size(); ++a) {
            // Initial contents participate in the array's value range.
            for (const double v : mem[a]) {
                result.array_ranges[a] =
                    result.array_ranges[a].hull(Interval(v));
            }
        }
    }

    for (const TapeStep& step : tape.steps()) {
        double value = 0.0;
        switch (step.kind) {
            case OpKind::Const:
                value = step.const_value;
                break;
            case OpKind::Copy:
                value = vars[static_cast<size_t>(step.arg0)];
                break;
            case OpKind::Neg:
                value = -vars[static_cast<size_t>(step.arg0)];
                break;
            case OpKind::Add:
                value = vars[static_cast<size_t>(step.arg0)] +
                        vars[static_cast<size_t>(step.arg1)];
                break;
            case OpKind::Sub:
                value = vars[static_cast<size_t>(step.arg0)] -
                        vars[static_cast<size_t>(step.arg1)];
                break;
            case OpKind::Mul:
                value = vars[static_cast<size_t>(step.arg0)] *
                        vars[static_cast<size_t>(step.arg1)];
                break;
            case OpKind::Div:
                value = vars[static_cast<size_t>(step.arg0)] /
                        vars[static_cast<size_t>(step.arg1)];
                break;
            case OpKind::Load:
                value = mem[static_cast<size_t>(step.array)]
                           [static_cast<size_t>(step.addr)];
                break;
            case OpKind::Store:
                value = vars[static_cast<size_t>(step.arg0)];
                break;
        }

        if (has_injections) {
            const size_t oi = static_cast<size_t>(step.op);
            for (const auto* inj : inj_by_op[oi]) {
                if (inj->occurrence == occurrence[oi]) value += inj->delta;
            }
            occurrence[oi]++;
        }

        if (step.kind == OpKind::Store) {
            mem[static_cast<size_t>(step.array)]
               [static_cast<size_t>(step.addr)] = value;
            if (step.output) result.outputs.push_back(value);
            if (options.record_ranges) {
                auto& hull =
                    result.array_ranges[static_cast<size_t>(step.array)];
                hull = hull.hull(Interval(value));
            }
        } else {
            vars[static_cast<size_t>(step.dest)] = value;
            if (options.record_ranges) {
                auto& hull = result.var_ranges[static_cast<size_t>(step.dest)];
                hull = hull.hull(Interval(value));
            }
        }
    }

    return result;
}

namespace {

/// A format's quantization constants, resolved once per replay. The values
/// are exactly those quantize_value/quantize_saturate derive per call
/// (scale = 2^fwl, lo/hi = the format's representable bounds), so the
/// inlined arithmetic below is bit-identical to the library routines —
/// it just skips the three ldexp calls per dynamic tape step.
struct QuantParams {
    double scale = 1.0;
    double lo = 0.0;
    double hi = 0.0;
};

QuantParams resolve_params(const FixedFormat& fmt) {
    QuantParams p;
    p.scale = pow2(fmt.fwl);
    p.lo = fmt.min_value();
    p.hi = fmt.max_value();
    return p;
}

}  // namespace

FixedSimResult run_fixed(const SimTape& tape, const FixedPointSpec& spec,
                         const Stimulus& stimulus) {
    const Kernel& kernel = tape.kernel();
    const QuantMode mode = spec.quant_mode();
    const bool round_half = mode == QuantMode::Round;
    FixedSimResult result;
    result.outputs.reserve(tape.output_count());

    // floor(v * scale [+ 0.5]) / scale — quantize_value with the scale
    // hoisted. The Truncate branch must NOT add 0.0: that would turn a
    // -0.0 product into +0.0 and break bit-identity with the walker.
    auto quantize = [round_half](double value, double scale) {
        const double scaled = value * scale;
        return (round_half ? std::floor(scaled + 0.5) : std::floor(scaled)) /
               scale;
    };
    auto quantize_into = [&](double value, const QuantParams& p) {
        double q = quantize(value, p.scale);
        if (q < p.lo) {
            q = p.lo;
            result.overflow_count++;
        } else if (q > p.hi) {
            q = p.hi;
            result.overflow_count++;
        }
        return q;
    };

    // The spec is constant for the whole replay: resolve every static op's
    // result format (and every array's storage format) once up front
    // instead of per dynamic instance.
    std::vector<QuantParams> op_params(kernel.ops().size());
    for (size_t o = 0; o < kernel.ops().size(); ++o) {
        const OpId op_id(static_cast<int32_t>(o));
        if (kernel.op(op_id).kind == OpKind::Store) {
            op_params[o] = resolve_params(
                spec.array_format(kernel.op(op_id).array));
        } else {
            op_params[o] = resolve_params(spec.result_format(op_id));
        }
    }

    // Memory image, quantized to each array's storage format.
    std::vector<std::vector<double>> mem = initial_memory(kernel, stimulus);
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        if (decl.storage == StorageClass::Input ||
            decl.storage == StorageClass::Param) {
            const QuantParams p = resolve_params(
                spec.array_format(ArrayId(static_cast<int32_t>(a))));
            for (double& v : mem[a]) v = quantize_into(v, p);
        }
    }

    std::vector<double> vars(kernel.vars().size(), 0.0);

    for (const TapeStep& step : tape.steps()) {
        const QuantParams& p = op_params[static_cast<size_t>(step.op)];

        if (step.kind == OpKind::Store) {
            const double value =
                quantize_into(vars[static_cast<size_t>(step.arg0)], p);
            mem[static_cast<size_t>(step.array)]
               [static_cast<size_t>(step.addr)] = value;
            if (step.output) result.outputs.push_back(value);
            continue;
        }

        double value = 0.0;
        switch (step.kind) {
            case OpKind::Const:
                value = quantize_into(step.const_value, p);
                break;
            case OpKind::Copy:
                value = quantize_into(vars[static_cast<size_t>(step.arg0)], p);
                break;
            case OpKind::Neg:
                value = quantize_into(-vars[static_cast<size_t>(step.arg0)],
                                      p);
                break;
            case OpKind::Add:
            case OpKind::Sub: {
                // Operands are aligned to the result FWL before the add:
                // a right shift truncates, exactly as the generated C does.
                const double a =
                    quantize(vars[static_cast<size_t>(step.arg0)], p.scale);
                const double b =
                    quantize(vars[static_cast<size_t>(step.arg1)], p.scale);
                value = quantize_into(
                    step.kind == OpKind::Add ? a + b : a - b, p);
                break;
            }
            case OpKind::Mul:
                // Full-precision product, then quantization to the result
                // format (one shift in the generated code).
                value = quantize_into(vars[static_cast<size_t>(step.arg0)] *
                                          vars[static_cast<size_t>(step.arg1)],
                                      p);
                break;
            case OpKind::Div:
                value = quantize_into(vars[static_cast<size_t>(step.arg0)] /
                                          vars[static_cast<size_t>(step.arg1)],
                                      p);
                break;
            case OpKind::Load:
                value = mem[static_cast<size_t>(step.array)]
                           [static_cast<size_t>(step.addr)];
                break;
            case OpKind::Store:
                break;  // handled above
        }
        vars[static_cast<size_t>(step.dest)] = value;
    }

    return result;
}

double measure_noise_power(const SimTape& tape, const FixedPointSpec& spec,
                           const Stimulus& stimulus,
                           const std::vector<double>& ref_outputs) {
    const FixedSimResult fix = run_fixed(tape, spec, stimulus);
    SLPWLO_ASSERT(ref_outputs.size() == fix.outputs.size(),
                  "reference and fixed-point output traces differ in length");
    if (ref_outputs.empty()) return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < ref_outputs.size(); ++i) {
        const double e = fix.outputs[i] - ref_outputs[i];
        sum += e * e;
    }
    return sum / static_cast<double>(ref_outputs.size());
}

}  // namespace slpwlo
