#include "sim/fixed_sim.hpp"

#include "sim/sim_tape.hpp"
#include "sim/walker.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {

FixedSimResult run_fixed(const Kernel& kernel, const FixedPointSpec& spec,
                         const Stimulus& stimulus) {
    return run_fixed(SimTape(kernel), spec, stimulus);
}

FixedSimResult run_fixed_walker(const Kernel& kernel,
                                const FixedPointSpec& spec,
                                const Stimulus& stimulus) {
    const QuantMode mode = spec.quant_mode();
    FixedSimResult result;

    auto quantize_into = [&](double value, const FixedFormat& fmt) {
        bool overflowed = false;
        const double q = quantize_saturate(value, fmt, mode, &overflowed);
        if (overflowed) result.overflow_count++;
        return q;
    };

    // Memory image, quantized to each array's storage format.
    std::vector<std::vector<double>> mem(kernel.arrays().size());
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        const FixedFormat fmt = spec.array_format(ArrayId(static_cast<int32_t>(a)));
        mem[a].assign(static_cast<size_t>(decl.size), 0.0);
        const std::vector<double>* source = nullptr;
        if (decl.storage == StorageClass::Input) {
            SLPWLO_CHECK(a < stimulus.size() &&
                             stimulus[a].size() == mem[a].size(),
                         "stimulus missing or mis-sized for input array `" +
                             decl.name + "`");
            source = &stimulus[a];
        } else if (decl.storage == StorageClass::Param) {
            source = &decl.values;
        }
        if (source != nullptr) {
            for (size_t i = 0; i < mem[a].size(); ++i) {
                mem[a][i] = quantize_into((*source)[i], fmt);
            }
        }
    }

    std::vector<double> vars(kernel.vars().size(), 0.0);

    walk_kernel(kernel, [&](OpId op_id, const std::vector<int>& loop_values) {
        const Op& op = kernel.op(op_id);

        if (op.kind == OpKind::Store) {
            const FixedFormat fmt = spec.array_format(op.array);
            const double value = quantize_into(vars[op.args[0].index()], fmt);
            const int idx = evaluate_affine(op.index, loop_values);
            mem[op.array.index()][static_cast<size_t>(idx)] = value;
            if (kernel.array(op.array).storage == StorageClass::Output) {
                result.outputs.push_back(value);
            }
            return;
        }

        const FixedFormat fmt = spec.result_format(op_id);
        double value = 0.0;
        switch (op.kind) {
            case OpKind::Const:
                value = quantize_into(op.const_value, fmt);
                break;
            case OpKind::Copy:
                value = quantize_into(vars[op.args[0].index()], fmt);
                break;
            case OpKind::Neg:
                value = quantize_into(-vars[op.args[0].index()], fmt);
                break;
            case OpKind::Add:
            case OpKind::Sub: {
                // Operands are aligned to the result FWL before the add:
                // a right shift truncates, exactly as the generated C does.
                const double a =
                    quantize_value(vars[op.args[0].index()], fmt.fwl, mode);
                const double b =
                    quantize_value(vars[op.args[1].index()], fmt.fwl, mode);
                value = quantize_into(op.kind == OpKind::Add ? a + b : a - b,
                                      fmt);
                break;
            }
            case OpKind::Mul:
                // Full-precision product, then quantization to the result
                // format (one shift in the generated code).
                value = quantize_into(
                    vars[op.args[0].index()] * vars[op.args[1].index()], fmt);
                break;
            case OpKind::Div:
                value = quantize_into(
                    vars[op.args[0].index()] / vars[op.args[1].index()], fmt);
                break;
            case OpKind::Load: {
                const int idx = evaluate_affine(op.index, loop_values);
                value = mem[op.array.index()][static_cast<size_t>(idx)];
                break;
            }
            case OpKind::Store:
                break;  // handled above
        }
        vars[op.dest.index()] = value;
    });

    return result;
}

double measure_noise_power(const Kernel& kernel, const FixedPointSpec& spec,
                           const Stimulus& stimulus) {
    const SimTape tape(kernel);
    const DoubleSimResult ref = run_double(tape, stimulus);
    return measure_noise_power(tape, spec, stimulus, ref.outputs);
}

}  // namespace slpwlo
