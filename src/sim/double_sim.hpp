// Double-precision reference simulator.
//
// Executes the kernel with real-valued arithmetic. It is the accuracy
// reference against which the fixed-point implementation is compared, the
// engine of the simulation-based dynamic-range analysis, and (through the
// perturbation hooks) of the noise-gain calibration in src/accuracy.
//
// Semantics: all Output/Buffer arrays start zeroed; Input arrays take the
// provided stimulus; Param arrays take their compile-time values. Each
// Store to an Output array appends to the output trace in execution order.
#pragma once

#include <vector>

#include "ir/kernel.hpp"
#include "support/interval.hpp"
#include "support/rng.hpp"

namespace slpwlo {

/// Per-input-array stimulus, indexed by ArrayId (non-input entries ignored).
using Stimulus = std::vector<std::vector<double>>;

/// Uniform random stimulus within each input array's declared range.
Stimulus make_stimulus(const Kernel& kernel, uint64_t seed);

struct DoubleSimOptions {
    /// Record per-variable and per-array value hulls.
    bool record_ranges = false;

    /// Add `delta` to the result of op (or to the stored value, for Store)
    /// at its `occurrence`-th dynamic execution (0-based).
    struct Injection {
        OpId op;
        long long occurrence = 0;
        double delta = 0.0;
    };
    std::vector<Injection> injections;

    /// Add `delta` to one element of an array's initial contents (used to
    /// calibrate input/coefficient quantization gains).
    struct ArrayInjection {
        ArrayId array;
        int element = 0;
        double delta = 0.0;
    };
    std::vector<ArrayInjection> array_injections;
};

struct DoubleSimResult {
    /// Values stored to Output arrays, in execution order.
    std::vector<double> outputs;
    /// Value hulls (only when record_ranges): var_ranges by VarId, array
    /// hulls by ArrayId over all elements including initial contents.
    std::vector<Interval> var_ranges;
    std::vector<Interval> array_ranges;
};

/// Reference simulation. Compiles the kernel to a SimTape and replays it;
/// callers with many runs over one kernel should compile the tape once and
/// use the run_double(SimTape, ...) overload (sim/sim_tape.hpp).
DoubleSimResult run_double(const Kernel& kernel, const Stimulus& stimulus,
                           const DoubleSimOptions& options = {});

/// The original recursive-walker implementation, kept as a differential
/// reference for the tape replay (tests, bench/perf_hotpaths).
DoubleSimResult run_double_walker(const Kernel& kernel,
                                  const Stimulus& stimulus,
                                  const DoubleSimOptions& options = {});

}  // namespace slpwlo
