// Double-precision reference C code generation.
//
// Emits the kernel's reference body as C99 doubles — the exact computation
// run_double performs, in the exact op order the loop-nest walk produces —
// so the compile-and-execute backend (src/exec) can run reference traces
// natively. Bit-identity with run_double holds because:
//   * coefficient and literal constants are printed as hexadecimal floating
//     literals (%a), which round-trip every double exactly;
//   * the ops are emitted in walk order with one assignment per op, leaving
//     the compiler no reassociation freedom;
//   * the backend compiles with -ffp-contract=off, so no fused
//     multiply-adds are introduced.
//
// Interface of the generated function:
//   void <kernel>_ref(const double* in..., double* out..., double* trace);
// one array parameter per Input/Output declaration; every store to an
// Output array appends the stored value to `trace` in execution order
// (run_double's output trace).
#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace slpwlo {

struct RefCResult {
    std::string code;           ///< full translation unit (no includes needed)
    std::string function_name;  ///< entry point
};

RefCResult emit_ref_c(const Kernel& kernel);

}  // namespace slpwlo
