// SIMD C code generation (the "Fixed-point / SIMD C Back-End" of Fig. 3).
//
// Emits the kernel as C99 over the abstract SIMD macro API of
// slpwlo_simd_emu.h (SLPWLO_VLOAD / VADD / VMUL / VSHR / VGET / ...):
// selected groups become vector macro sequences, everything else stays
// scalar fixed-point code. Lane values are extracted back to their scalar
// variables after each group, leaving register optimization (keeping
// vectors live across iterations) to the target C compiler — exactly the
// division of labour of the paper's macro backend.
//
// Functionally bit-exact with the run_fixed simulator for overflow-free
// specs (IWL analysis guarantees that); integration-tested by compiling
// and running the emitted code.
#pragma once

#include "codegen/fixed_c.hpp"
#include "core/slp_aware_wlo.hpp"

namespace slpwlo {

/// The portable emulation implementation of the abstract macro API.
/// Target ports replace this header with intrinsic mappings (see
/// simd_target_mapping_comment).
std::string simd_emulation_header();

/// Commented intrinsic-mapping notes for a built-in target, to seed a port.
std::string simd_target_mapping_comment(const TargetModel& target);

FixedCResult emit_simd_c(const Kernel& kernel, const FixedPointSpec& spec,
                         const std::vector<BlockGroups>& groups);

}  // namespace slpwlo
