#include "codegen/c_emitter.hpp"

#include <cmath>

#include "support/dbmath.hpp"
#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace slpwlo {

std::string c_name(const Kernel& kernel, VarId var) {
    std::string name = kernel.var(var).name;
    std::string out;
    for (const char c : name) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_') {
            out += c;
        }
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "v" + out;
    return out;
}

std::string c_loop_name(const Kernel& kernel, LoopId loop) {
    std::string out;
    for (const char c : kernel.loop(loop).var_name) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_') {
            out += c;
        } else {
            out += '_';
        }
    }
    return out + std::to_string(loop.index());
}

std::string c_int_type(int wl) {
    if (wl <= 8) return "int8_t";
    if (wl <= 16) return "int16_t";
    if (wl <= 32) return "int32_t";
    return "int64_t";
}

std::string c_index(const Kernel& kernel, const Affine& index) {
    std::ostringstream os;
    bool first = true;
    for (const auto& [loop, coeff] : index.coeffs()) {
        if (!first) os << (coeff >= 0 ? " + " : " - ");
        const int mag = first ? coeff : std::abs(coeff);
        first = false;
        if (mag == 1) {
            os << c_loop_name(kernel, loop);
        } else if (mag == -1) {
            os << "-" << c_loop_name(kernel, loop);
        } else {
            os << mag << "*" << c_loop_name(kernel, loop);
        }
    }
    if (first) {
        os << index.offset();
    } else if (index.offset() > 0) {
        os << " + " << index.offset();
    } else if (index.offset() < 0) {
        os << " - " << -index.offset();
    }
    return os.str();
}

long long raw_fixed_value(double value, const FixedFormat& format,
                          QuantMode mode) {
    const double q = quantize_saturate(value, format, mode);
    return static_cast<long long>(std::llround(q * pow2(format.fwl)));
}

void CodeWriter::line(const std::string& text) {
    for (int i = 0; i < indent_; ++i) out_ << "    ";
    out_ << text << "\n";
}

void CodeWriter::blank() { out_ << "\n"; }

void CodeWriter::open(const std::string& text) {
    line(text + " {");
    indent_++;
}

void CodeWriter::close(const std::string& tail) {
    SLPWLO_ASSERT(indent_ > 0, "unbalanced CodeWriter::close");
    indent_--;
    line(tail);
}

}  // namespace slpwlo
