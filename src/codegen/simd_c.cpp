#include "codegen/simd_c.hpp"

#include <cctype>
#include <map>

#include "accuracy/noise_source.hpp"
#include "codegen/c_emitter.hpp"
#include "lower/lowering.hpp"
#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace slpwlo {

std::string simd_emulation_header() {
    return R"(/* slpwlo_simd_emu.h — portable emulation of the abstract SIMD macro API.
 * A target port implements the same macros with the processor's intrinsics
 * (see simd_target_mapping_comment for mapping notes). */
#ifndef SLPWLO_SIMD_EMU_H
#define SLPWLO_SIMD_EMU_H
#include <stdint.h>

#define SLPWLO_MAX_LANES 8
typedef struct { int64_t lane[SLPWLO_MAX_LANES]; } slpwlo_vec;

static inline int64_t slpwlo_vsat(int64_t v, int bits) {
    const int64_t hi = (((int64_t)1) << (bits - 1)) - 1;
    const int64_t lo = -(((int64_t)1) << (bits - 1));
    return v < lo ? lo : (v > hi ? hi : v);
}

/* contiguous vector load, ascending addresses */
#define SLPWLO_VLOAD(dst, arr, start, n) \
    do { for (int _i = 0; _i < (n); ++_i) (dst).lane[_i] = (arr)[(start) + _i]; } while (0)
/* contiguous vector load, lanes reversed (convolution access pattern) */
#define SLPWLO_VLOADR(dst, arr, start, n) \
    do { for (int _i = 0; _i < (n); ++_i) (dst).lane[_i] = (arr)[(start) + (n) - 1 - _i]; } while (0)
/* contiguous vector store with per-store saturation */
#define SLPWLO_VSTORE(arr, start, src, n, bits) \
    do { for (int _i = 0; _i < (n); ++_i) (arr)[(start) + _i] = slpwlo_vsat((src).lane[_i], (bits)); } while (0)

#define SLPWLO_VSET(dst, l, expr) ((dst).lane[(l)] = (int64_t)(expr))
#define SLPWLO_VGET(src, l) ((src).lane[(l)])

#define SLPWLO_VADD(dst, a, b, n) \
    do { for (int _i = 0; _i < (n); ++_i) (dst).lane[_i] = (a).lane[_i] + (b).lane[_i]; } while (0)
#define SLPWLO_VSUB(dst, a, b, n) \
    do { for (int _i = 0; _i < (n); ++_i) (dst).lane[_i] = (a).lane[_i] - (b).lane[_i]; } while (0)
#define SLPWLO_VMUL(dst, a, b, n) \
    do { for (int _i = 0; _i < (n); ++_i) (dst).lane[_i] = (a).lane[_i] * (b).lane[_i]; } while (0)
#define SLPWLO_VNEG(dst, a, n) \
    do { for (int _i = 0; _i < (n); ++_i) (dst).lane[_i] = -(a).lane[_i]; } while (0)
/* arithmetic shift right by a common amount (truncation scaling) */
#define SLPWLO_VSHR(dst, a, k, n) \
    do { for (int _i = 0; _i < (n); ++_i) (dst).lane[_i] = (a).lane[_i] >> (k); } while (0)
#define SLPWLO_VSHL(dst, a, k, n) \
    do { for (int _i = 0; _i < (n); ++_i) (dst).lane[_i] = (a).lane[_i] << (k); } while (0)

#endif /* SLPWLO_SIMD_EMU_H */
)";
}

std::string simd_target_mapping_comment(const TargetModel& target) {
    std::ostringstream os;
    os << "/* " << target.name << " intrinsic mapping notes:\n";
    if (target.simd_width_bits == 0) {
        os << " *   no SIMD: the macro API degrades to scalar loops.\n";
    } else {
        os << " *   vector width: " << target.simd_width_bits
           << " bits; element WLs:";
        for (const int m : target.simd_element_wls) os << " " << m;
        os << "\n";
        os << " *   SLPWLO_VADD(.., 2)  -> dual " << target.simd_element_wls[0]
           << "-bit add instruction\n";
        os << " *   SLPWLO_VMUL(.., 2)  -> dual multiply (widening)\n";
        os << " *   SLPWLO_VSHR         -> vector shift, common amount only\n";
        os << " *   SLPWLO_VLOAD/VSTORE -> aligned packed memory access\n";
        os << " *   SLPWLO_VSET/VGET    -> insert/extract lane ("
           << target.extract_ops << " op(s))\n";
    }
    os << " */\n";
    return os.str();
}

namespace {

class SimdCEmitter {
public:
    SimdCEmitter(const Kernel& kernel, const FixedPointSpec& spec,
                 const std::vector<BlockGroups>& groups)
        : kernel_(kernel),
          spec_(spec),
          groups_(groups),
          def_nodes_(compute_var_def_nodes(kernel)) {}

    FixedCResult run() {
        FixedCResult result;
        std::string fn;
        for (const char c : kernel_.name()) {
            fn += (std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
        }
        result.function_name = fn + "_simd";
        prologue(result.function_name);
        emit_region(kernel_.body());
        w_.close();
        result.code = w_.str();
        return result;
    }

private:
    const std::vector<SimdGroup>* groups_of(BlockId block) const {
        for (const BlockGroups& bg : groups_) {
            if (bg.block == block) return &bg.groups;
        }
        return nullptr;
    }

    int fwl_of_var(VarId v) const {
        const NodeRef node = def_nodes_[static_cast<size_t>(v.index())];
        SLPWLO_ASSERT(node.valid(), "read of a never-defined variable");
        return spec_.format(node).fwl;
    }

    std::string aligned(VarId v, int target_fwl) const {
        const std::string name = c_name(kernel_, v);
        const int k = fwl_of_var(v) - target_fwl;
        if (k == 0) return "(int64_t)" + name;
        if (k > 0) {
            return "(((int64_t)" + name + ") >> " + std::to_string(k) + ")";
        }
        return "(((int64_t)" + name + ") << " + std::to_string(-k) + ")";
    }

    /// `aligned` with the negation folded in before the shift (the shift
    /// is floor; floor(-v) != -floor(v) when bits drop).
    std::string aligned_negated(VarId v, int target_fwl) const {
        const std::string name = c_name(kernel_, v);
        const int k = fwl_of_var(v) - target_fwl;
        if (k == 0) return "(-(int64_t)" + name + ")";
        if (k > 0) {
            return "((-(int64_t)" + name + ") >> " + std::to_string(k) + ")";
        }
        return "((-(int64_t)" + name + ") << " + std::to_string(-k) + ")";
    }

    std::string sat(const std::string& expr, int wl) const {
        return "(" + c_int_type(wl) + ")slpwlo_vsat(" + expr + ", " +
               std::to_string(wl) + ")";
    }

    void prologue(const std::string& function_name) {
        w_.line("/* generated by slpwlo: SIMD implementation of `" +
                kernel_.name() + "` over the abstract macro API */");
        w_.line("#include \"slpwlo_simd_emu.h\"");
        w_.blank();
        for (size_t a = 0; a < kernel_.arrays().size(); ++a) {
            const ArrayDecl& decl = kernel_.arrays()[a];
            if (decl.storage != StorageClass::Param) continue;
            const FixedFormat fmt =
                spec_.array_format(ArrayId(static_cast<int32_t>(a)));
            std::vector<std::string> values;
            for (const double v : decl.values) {
                values.push_back(std::to_string(
                    raw_fixed_value(v, fmt, spec_.quant_mode())));
            }
            w_.line("static const " + c_int_type(fmt.wl()) + " " + decl.name +
                    "[" + std::to_string(decl.size) + "] = {" +
                    join(values, ", ") + "};");
        }
        std::vector<std::string> params;
        for (size_t a = 0; a < kernel_.arrays().size(); ++a) {
            const ArrayDecl& decl = kernel_.arrays()[a];
            const FixedFormat fmt =
                spec_.array_format(ArrayId(static_cast<int32_t>(a)));
            if (decl.storage == StorageClass::Input) {
                params.push_back("const " + c_int_type(fmt.wl()) + " " +
                                 decl.name + "[]");
            } else if (decl.storage == StorageClass::Output) {
                params.push_back(c_int_type(fmt.wl()) + " " + decl.name +
                                 "[]");
            }
            (void)fmt;
        }
        w_.blank();
        w_.open("void " + function_name + "(" + join(params, ", ") + ")");
        for (size_t a = 0; a < kernel_.arrays().size(); ++a) {
            const ArrayDecl& decl = kernel_.arrays()[a];
            if (decl.storage != StorageClass::Buffer) continue;
            const FixedFormat fmt =
                spec_.array_format(ArrayId(static_cast<int32_t>(a)));
            w_.line(c_int_type(fmt.wl()) + " " + decl.name + "[" +
                    std::to_string(decl.size) + "] = {0};");
        }
        for (size_t v = 0; v < kernel_.vars().size(); ++v) {
            const NodeRef node = def_nodes_[v];
            if (!node.valid()) continue;
            w_.line(c_int_type(spec_.format(node).wl()) + " " +
                    c_name(kernel_, VarId(static_cast<int32_t>(v))) + " = 0;");
        }
        w_.line("slpwlo_vec va, vb, vr;");
        w_.line("(void)va; (void)vb; (void)vr;");
        w_.blank();
    }

    void emit_region(const Region& region) {
        for (const RegionItem& item : region.items) {
            if (item.kind == RegionItem::Kind::Block) {
                emit_block(item.block);
            } else {
                const Loop& loop = kernel_.loop(item.loop);
                const std::string v = c_loop_name(kernel_, loop.id);
                w_.open("for (int " + v + " = " + std::to_string(loop.begin) +
                        "; " + v + " < " + std::to_string(loop.end) + "; ++" +
                        v + ")");
                emit_region(loop.body);
                w_.close();
            }
        }
    }

    void emit_block(BlockId block) {
        const std::vector<SimdGroup>* groups = groups_of(block);
        static const std::vector<SimdGroup> none;
        const std::vector<SimdGroup>& gs = groups != nullptr ? *groups : none;

        for (const int unit : block_unit_order(kernel_, block, gs)) {
            if (unit >= 0) {
                emit_scalar_op(
                    kernel_.block(block).ops[static_cast<size_t>(unit)]);
            } else {
                emit_group(gs[static_cast<size_t>(-unit - 1)]);
            }
        }
    }

    // --- groups ----------------------------------------------------------------

    bool adjacent(const SimdGroup& group, bool* reversed) const {
        bool fwd = true, rev = true;
        for (size_t i = 1; i < group.lanes.size(); ++i) {
            const auto d = kernel_.op(group.lanes[i])
                               .index.constant_difference(
                                   kernel_.op(group.lanes[i - 1]).index);
            if (!d.has_value() || *d != 1) fwd = false;
            if (!d.has_value() || *d != -1) rev = false;
        }
        *reversed = !fwd && rev;
        return fwd || rev;
    }

    void emit_group(const SimdGroup& group) {
        const Op& first = kernel_.op(group.lanes.front());
        const int w = group.width();
        const std::string n = std::to_string(w);
        switch (first.kind) {
            case OpKind::Load: {
                bool reversed = false;
                if (adjacent(group, &reversed)) {
                    const Affine& start =
                        kernel_
                            .op(reversed ? group.lanes.back()
                                         : group.lanes.front())
                            .index;
                    w_.line(std::string("SLPWLO_VLOAD") +
                            (reversed ? "R" : "") + "(vr, " +
                            kernel_.array(first.array).name + ", " +
                            c_index(kernel_, start) + ", " + n + ");");
                } else {
                    for (int lane = 0; lane < w; ++lane) {
                        const Op& lop = kernel_.op(group.lanes[lane]);
                        w_.line("SLPWLO_VSET(vr, " + std::to_string(lane) +
                                ", " + kernel_.array(lop.array).name + "[" +
                                c_index(kernel_, lop.index) + "]);");
                    }
                }
                extract_lanes(group, /*shift_amounts=*/{});
                break;
            }
            case OpKind::Store: {
                const FixedFormat fmt = spec_.array_format(first.array);
                for (int lane = 0; lane < w; ++lane) {
                    const Op& lop = kernel_.op(group.lanes[lane]);
                    w_.line("SLPWLO_VSET(va, " + std::to_string(lane) + ", " +
                            aligned(lop.args[0], fmt.fwl) + ");");
                }
                bool reversed = false;
                if (adjacent(group, &reversed) && !reversed) {
                    w_.line("SLPWLO_VSTORE(" +
                            kernel_.array(first.array).name + ", " +
                            c_index(kernel_, first.index) + ", va, " + n +
                            ", " + std::to_string(fmt.wl()) + ");");
                } else {
                    for (int lane = 0; lane < w; ++lane) {
                        const Op& lop = kernel_.op(group.lanes[lane]);
                        w_.line(kernel_.array(lop.array).name + "[" +
                                c_index(kernel_, lop.index) + "] = " +
                                sat("SLPWLO_VGET(va, " +
                                        std::to_string(lane) + ")",
                                    fmt.wl()) +
                                ";");
                    }
                }
                break;
            }
            case OpKind::Add:
            case OpKind::Sub: {
                // Operands aligned per lane to the lane's result fwl.
                for (int slot = 0; slot < first.num_args(); ++slot) {
                    const std::string vreg = slot == 0 ? "va" : "vb";
                    for (int lane = 0; lane < w; ++lane) {
                        const Op& lop = kernel_.op(group.lanes[lane]);
                        const int fr =
                            spec_.result_format(group.lanes[lane]).fwl;
                        w_.line("SLPWLO_VSET(" + vreg + ", " +
                                std::to_string(lane) + ", " +
                                aligned(lop.args[slot], fr) + ");");
                    }
                }
                const char* macro = first.kind == OpKind::Add
                                        ? "SLPWLO_VADD"
                                        : "SLPWLO_VSUB";
                w_.line(std::string(macro) + "(vr, va, vb, " + n + ");");
                extract_lanes(group, {});
                break;
            }
            case OpKind::Neg: {
                // Negate at the operand's own precision, then scale at
                // extraction: the alignment shift must see the *negated*
                // value (the shift is floor, and floor(-v) != -floor(v)),
                // matching the simulator's quantize-the-result order.
                std::vector<int> amounts;
                amounts.reserve(static_cast<size_t>(w));
                bool any_shift = false;
                for (int lane = 0; lane < w; ++lane) {
                    const Op& lop = kernel_.op(group.lanes[lane]);
                    w_.line("SLPWLO_VSET(va, " + std::to_string(lane) +
                            ", (int64_t)" + c_name(kernel_, lop.args[0]) +
                            ");");
                    const int k =
                        fwl_of_var(lop.args[0]) -
                        spec_.result_format(group.lanes[lane]).fwl;
                    if (k != 0) any_shift = true;
                    amounts.push_back(k);
                }
                w_.line("SLPWLO_VNEG(vr, va, " + n + ");");
                extract_lanes(group, any_shift ? amounts
                                               : std::vector<int>{});
                break;
            }
            case OpKind::Mul: {
                for (int slot = 0; slot < 2; ++slot) {
                    const std::string vreg = slot == 0 ? "va" : "vb";
                    for (int lane = 0; lane < w; ++lane) {
                        const Op& lop = kernel_.op(group.lanes[lane]);
                        w_.line("SLPWLO_VSET(" + vreg + ", " +
                                std::to_string(lane) + ", (int64_t)" +
                                c_name(kernel_, lop.args[slot]) + ");");
                    }
                }
                w_.line("SLPWLO_VMUL(vr, va, vb, " + n + ");");
                // Per-lane product quantization down to the result format.
                std::vector<int> amounts;
                for (const OpId lane : group.lanes) {
                    const Op& lop = kernel_.op(lane);
                    amounts.push_back(fwl_of_var(lop.args[0]) +
                                      fwl_of_var(lop.args[1]) -
                                      spec_.result_format(lane).fwl);
                }
                const bool uniform = std::all_of(
                    amounts.begin(), amounts.end(),
                    [&](int a) { return a == amounts[0]; });
                if (uniform && amounts[0] > 0) {
                    w_.line("SLPWLO_VSHR(vr, vr, " +
                            std::to_string(amounts[0]) + ", " + n + ");");
                    extract_lanes(group, {});
                } else {
                    extract_lanes(group, amounts);
                }
                break;
            }
            default:
                throw Error("SIMD emission for unsupported group kind");
        }
    }

    /// Assign each lane back to its scalar variable, optionally shifting
    /// per lane (non-uniform quantization), saturating to the lane format.
    void extract_lanes(const SimdGroup& group,
                       const std::vector<int>& shift_amounts) {
        for (int lane = 0; lane < group.width(); ++lane) {
            const Op& lop = kernel_.op(group.lanes[lane]);
            if (!lop.dest.valid()) continue;
            const FixedFormat fmt = spec_.result_format(group.lanes[lane]);
            std::string expr =
                "SLPWLO_VGET(vr, " + std::to_string(lane) + ")";
            if (!shift_amounts.empty()) {
                const int k = shift_amounts[static_cast<size_t>(lane)];
                if (k > 0) {
                    expr = "(" + expr + " >> " + std::to_string(k) + ")";
                } else if (k < 0) {
                    expr = "(" + expr + " << " + std::to_string(-k) + ")";
                }
            }
            w_.line(c_name(kernel_, lop.dest) + " = " + sat(expr, fmt.wl()) +
                    ";");
        }
    }

    // --- scalar ops (same semantics as the fixed-point emitter) -----------------

    void emit_scalar_op(OpId op_id) {
        const Op& op = kernel_.op(op_id);
        switch (op.kind) {
            case OpKind::Const: {
                const FixedFormat fmt = spec_.result_format(op_id);
                w_.line(c_name(kernel_, op.dest) + " = " +
                        std::to_string(raw_fixed_value(
                            op.const_value, fmt, spec_.quant_mode())) +
                        ";");
                break;
            }
            case OpKind::Copy:
            case OpKind::Neg: {
                const FixedFormat fmt = spec_.result_format(op_id);
                // Neg: negate *before* the alignment shift (floor(-v) !=
                // -floor(v)), same order as the fixed-point emitter.
                const std::string src =
                    op.kind == OpKind::Neg
                        ? aligned_negated(op.args[0], fmt.fwl)
                        : aligned(op.args[0], fmt.fwl);
                w_.line(c_name(kernel_, op.dest) + " = " +
                        sat(src, fmt.wl()) + ";");
                break;
            }
            case OpKind::Load:
                w_.line(c_name(kernel_, op.dest) + " = " +
                        kernel_.array(op.array).name + "[" +
                        c_index(kernel_, op.index) + "];");
                break;
            case OpKind::Store: {
                const FixedFormat fmt = spec_.array_format(op.array);
                w_.line(kernel_.array(op.array).name + "[" +
                        c_index(kernel_, op.index) + "] = " +
                        sat(aligned(op.args[0], fmt.fwl), fmt.wl()) + ";");
                break;
            }
            case OpKind::Add:
            case OpKind::Sub: {
                const FixedFormat fmt = spec_.result_format(op_id);
                w_.line(c_name(kernel_, op.dest) + " = " +
                        sat(aligned(op.args[0], fmt.fwl) +
                                (op.kind == OpKind::Add ? " + " : " - ") +
                                aligned(op.args[1], fmt.fwl),
                            fmt.wl()) +
                        ";");
                break;
            }
            case OpKind::Mul: {
                const FixedFormat fmt = spec_.result_format(op_id);
                const int k = fwl_of_var(op.args[0]) +
                              fwl_of_var(op.args[1]) - fmt.fwl;
                std::string product = "(int64_t)" +
                                      c_name(kernel_, op.args[0]) + " * " +
                                      c_name(kernel_, op.args[1]);
                if (k > 0) {
                    product = "((" + product + ") >> " + std::to_string(k) +
                              ")";
                } else if (k < 0) {
                    product = "((" + product + ") << " + std::to_string(-k) +
                              ")";
                }
                w_.line(c_name(kernel_, op.dest) + " = " +
                        sat(product, fmt.wl()) + ";");
                break;
            }
            case OpKind::Div:
                throw Error("SIMD C generation does not support division");
        }
    }

    const Kernel& kernel_;
    const FixedPointSpec& spec_;
    const std::vector<BlockGroups>& groups_;
    std::vector<NodeRef> def_nodes_;
    CodeWriter w_;
};

}  // namespace

FixedCResult emit_simd_c(const Kernel& kernel, const FixedPointSpec& spec,
                         const std::vector<BlockGroups>& groups) {
    return SimdCEmitter(kernel, spec, groups).run();
}

}  // namespace slpwlo
