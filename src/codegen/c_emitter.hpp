// Shared C-emission utilities: identifier sanitization, integer types,
// affine-index expressions and an indenting writer.
#pragma once

#include <sstream>
#include <string>

#include "fixpoint/spec.hpp"
#include "ir/kernel.hpp"

namespace slpwlo {

/// C identifier for a variable ("%t3" -> "t3", "acc0" -> "acc0").
std::string c_name(const Kernel& kernel, VarId var);

/// Loop variable name ("n", "k_u", ...), unique per loop.
std::string c_loop_name(const Kernel& kernel, LoopId loop);

/// Smallest standard integer type holding `wl` bits (int8_t/16/32/64).
std::string c_int_type(int wl);

/// C expression for an affine index, e.g. "18*i + j + 19".
std::string c_index(const Kernel& kernel, const Affine& index);

/// Raw integer value of a real constant in a fixed-point format
/// (truncated and saturated, matching the simulator).
long long raw_fixed_value(double value, const FixedFormat& format,
                          QuantMode mode);

/// Simple indented code writer.
class CodeWriter {
public:
    void line(const std::string& text);
    void blank();
    void open(const std::string& text);   ///< "text {" and indent
    void close(const std::string& tail = "}");
    std::string str() const { return out_.str(); }

private:
    std::ostringstream out_;
    int indent_ = 0;
};

}  // namespace slpwlo
