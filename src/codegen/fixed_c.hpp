// Fixed-point C code generation (the "Fixed-point C Back-End" of Fig. 3/5).
//
// Emits a self-contained C99 translation unit implementing the kernel under
// a fixed-point specification: integer arrays and variables in each node's
// storage type, explicit arithmetic-shift scalings for operand alignment
// and product quantization, and saturation to each node's range —
// bit-exact with the run_fixed simulator (integration-tested by compiling
// and running the emitted code against it).
//
// Interface of the generated function:
//   void <kernel>_fixed(const T_in* x_raw, T_out* y_raw);
// where raw values are the fixed-point integers (value * 2^fwl); coefficient
// arrays are embedded as static const data.
#pragma once

#include <string>

#include "fixpoint/spec.hpp"

namespace slpwlo {

struct FixedCResult {
    std::string code;           ///< full translation unit
    std::string function_name;  ///< entry point
};

FixedCResult emit_fixed_c(const Kernel& kernel, const FixedPointSpec& spec);

}  // namespace slpwlo
