// Fixed-point C code generation (the "Fixed-point C Back-End" of Fig. 3/5).
//
// Emits a self-contained C99 translation unit implementing the kernel under
// a fixed-point specification: integer arrays and variables in each node's
// storage type, explicit arithmetic-shift scalings for operand alignment
// and product quantization, and saturation to each node's range —
// bit-exact with the run_fixed simulator (integration-tested by compiling
// and running the emitted code against it).
//
// Interface of the generated function:
//   void <kernel>_fixed(const T_in* x_raw, T_out* y_raw);
// where raw values are the fixed-point integers (value * 2^fwl); coefficient
// arrays are embedded as static const data.
//
// The compile-and-execute backend (src/exec) asks for two instrumented
// extensions so the compiled artifact can stand in for SimTape::run_fixed
// bit for bit (see DESIGN.md §12):
//   * count_overflows: every saturation site counts into a caller-provided
//     `long long* slpwlo_ovf`, exactly once per dynamic clamping event —
//     including constants that saturate at emission time, which the
//     simulator re-counts on every execution;
//   * record_trace: every store to an Output array appends the stored raw
//     integer to a caller-provided `int64_t* slpwlo_trace` cursor, in
//     execution order (the simulator's output trace).
#pragma once

#include <string>

#include "fixpoint/spec.hpp"

namespace slpwlo {

struct FixedCOptions {
    /// Add `long long* slpwlo_ovf` to the signature and count every dynamic
    /// saturation event into it (matches FixedSimResult::overflow_count for
    /// the op-level sites; input/param quantization is counted host-side).
    bool count_overflows = false;
    /// Add `int64_t* slpwlo_trace` to the signature and append each Output
    /// store's raw value to it, in execution order.
    bool record_trace = false;
};

struct FixedCResult {
    std::string code;           ///< full translation unit
    std::string function_name;  ///< entry point
};

/// True when every node format of `spec` fits the generated C's raw
/// integer domain: 1 <= wl <= 63 (the saturation limits are built with
/// `1 << (wl - 1)` over int64_t). Specs straight out of range analysis can
/// carry degenerate formats (wl <= 0 before WLO assigns word lengths);
/// emitting those would be undefined behavior in the generated C, so
/// callers that cannot fail (the compiled noise evaluator) test this first
/// and fall back to the tape. Writes a diagnostic into `why` when provided.
bool spec_fits_c_domain(const FixedPointSpec& spec,
                        std::string* why = nullptr);

/// Throws Error when `spec` has formats outside the C raw-integer domain
/// (see spec_fits_c_domain).
FixedCResult emit_fixed_c(const Kernel& kernel, const FixedPointSpec& spec,
                          const FixedCOptions& options);

FixedCResult emit_fixed_c(const Kernel& kernel, const FixedPointSpec& spec);

}  // namespace slpwlo
