// FlowEngine: the composable pass pipeline behind the paper's flows.
//
// A Pass is one stage of a float-to-fixed-point compilation flow operating
// on a shared PassContext. The concrete passes mirror the boxes of the
// paper's figures:
//
//   RangeAnalysis     -> dynamic ranges            (Section II.B, stage i)
//   IwlDetermination  -> binary-point placement    (Section II.B, stage i)
//   SlpAwareWlo       -> Fig. 1a/1c joint WLO+SLP (+ Fig. 1b per block)
//   TabuWlo           -> Nguyen'11 baseline WLO    (Fig. 5, stage 1)
//   PlainSlp          -> Liu'12 extraction         (Fig. 5, stage 2)
//   ScalingOptim      -> Fig. 1b as a standalone pass over extracted groups
//   Lowering          -> machine IR (scalar + SIMD, or float reference)
//   CycleEval         -> VLIW schedule + cycle counts + analytic noise
//
// A FlowPipeline is a named sequence of passes; the FlowRegistry maps flow
// names to pipelines so that a new flow variant is a registry entry, not a
// hand-written driver. The built-ins reproduce the paper:
//
//   "WLO-SLP"            Fig. 3   range, iwl, slp-aware-wlo, lower, cycles
//   "WLO-First"          Fig. 5   range, iwl, tabu, plain-slp, lower, cycles
//   "WLO-First+Scaling"  variant  ... plain-slp, scaling-optim, lower, cycles
//   "Float"              Fig. 6   float-lower, cycles
//   "WLO-Optimal"        exact    range, iwl, wlo-exact, plain-slp, ...
//   "SLP-Optimal"        exact    range, iwl, slp-aware-wlo-exact, ...
//
// Cycle evaluation is memoized: an EvalCache shared across sweep points
// keys {scalar cycles, SIMD cycles, analytic noise} by a content hash of
// (kernel, target, final spec, selected groups), so two sweep points that
// converge to the same specification pay for lowering, scheduling and
// noise evaluation once.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/flow.hpp"
#include "slp/packed_view.hpp"

namespace slpwlo {

/// Memoized result of the evaluation stage of a flow (lowering +
/// scheduling + analytic noise). Thread-safe; shared across sweep points.
///
/// The cache is serializable (dist/cache_snapshot.hpp): export_entries()
/// walks the contents in key order so snapshots — and anything derived
/// from them — are deterministic, and store() doubles as the import path.
/// An optional capacity bound (set_capacity) evicts in insertion order so
/// long sweeps cannot grow memory without bound; eviction only ever costs
/// recomputation, never correctness.
class EvalCache {
public:
    struct Entry {
        long long scalar_cycles = 0;
        long long simd_cycles = 0;
        double analytic_noise_db = 0.0;

        /// Bit-exact comparison (snapshot merging must distinguish a
        /// genuine conflict from a benign duplicate).
        bool operator==(const Entry& other) const;
        bool operator!=(const Entry& other) const { return !(*this == other); }
    };

    /// Memoized result of a flow's *optimization* stages — IWL
    /// determination, WLO, SLP extraction, scaling optimization — keyed by
    /// stage_memo_key (kernel fp, target fp, flow name, accuracy
    /// constraint, every optimization tunable). A hit restores the final
    /// spec, the selected groups and the stage statistics, so a warm sweep
    /// skips Tabu/SLP entirely and its report bytes are identical to the
    /// cold run's.
    struct StageEntry {
        QuantMode quant_mode = QuantMode::Truncate;
        /// Node formats in spec.nodes() order.
        std::vector<FixedFormat> formats;
        std::vector<BlockGroups> groups;
        SlpStats slp_stats;
        ScalingStats scaling_stats;
        TabuStats tabu_stats;
        /// Exact-search outcome (WLO-Optimal / SLP-Optimal). Memoized like
        /// the other stage statistics so a warm optimal run reports the
        /// same solver numbers as the cold one; excluded from report
        /// identity bytes regardless (see FlowOptions::SolverStats).
        SolverStats solver_stats;
        int group_count = 0;

        /// Bit-exact comparison (doubles compared by representation).
        bool operator==(const StageEntry& other) const;
        bool operator!=(const StageEntry& other) const {
            return !(*this == other);
        }
    };

    std::optional<Entry> lookup(uint64_t key) const;
    /// Residency check that does NOT count as cache traffic (lookup()
    /// bumps the hit/miss counters; snapshot preloading must not).
    bool contains(uint64_t key) const;
    /// Insert `entry` under `key`. A key that is already present keeps its
    /// existing entry (first store wins); at capacity the oldest insertion
    /// is evicted first.
    void store(uint64_t key, const Entry& entry);

    size_t hits() const;
    size_t misses() const;
    size_t size() const;

    /// Bound the entry count; storing past it evicts the oldest insertion
    /// (deterministic FIFO). 0 — the default — means unlimited. Shrinking
    /// below the current size evicts immediately.
    void set_capacity(size_t capacity);
    size_t capacity() const;
    size_t evictions() const;

    /// The current contents sorted by key (a deterministic order
    /// independent of hashing and insertion history), for snapshots.
    std::vector<std::pair<uint64_t, Entry>> export_entries() const;

    // --- stage memo table -------------------------------------------------------
    // A second table with the same semantics (thread-safe, first store
    // wins, FIFO eviction under the shared capacity bound, counter-neutral
    // contains) holding StageEntry values.
    std::optional<StageEntry> lookup_stage(uint64_t key) const;
    bool contains_stage(uint64_t key) const;
    void store_stage(uint64_t key, const StageEntry& entry);
    size_t stage_hits() const;
    size_t stage_misses() const;
    size_t stage_size() const;
    std::vector<std::pair<uint64_t, StageEntry>> export_stage_entries() const;

private:
    void evict_to_capacity_locked();

    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, Entry> entries_;
    std::unordered_map<uint64_t, StageEntry> stage_entries_;
    /// Resident keys in insertion order (the FIFO eviction queues).
    std::deque<uint64_t> insertion_order_;
    std::deque<uint64_t> stage_insertion_order_;
    size_t capacity_ = 0;
    size_t evictions_ = 0;
    mutable size_t hits_ = 0;
    mutable size_t misses_ = 0;
    mutable size_t stage_hits_ = 0;
    mutable size_t stage_misses_ = 0;
};

/// Content hash of everything the evaluation stage depends on: the full
/// kernel structure (via its printed form), every semantic field of the
/// target model, the quantization mode, every node's fixed-point format,
/// and the selected groups' lane lists — names alone would alias
/// same-name kernels/targets with different configurations.
/// `float_variant` keys the float reference lowering (which ignores spec
/// and groups).
uint64_t evaluation_key(const KernelContext& context,
                        const TargetModel& target, const FlowResult& result,
                        bool float_variant = false);

/// Content hash of everything the optimization stages depend on: the
/// kernel fingerprint, the target model's content fingerprint, the flow
/// name (different pipelines produce different specs from identical
/// inputs), the accuracy constraint, the quantization mode, and every
/// WLO/SLP/Tabu tunable. The nested accuracy_db fields of
/// wlo_slp/wlo_first are deliberately excluded — the passes overwrite
/// them with options.accuracy_db.
uint64_t stage_memo_key(const KernelContext& context,
                        const TargetModel& target,
                        const std::string& flow_name,
                        const FlowOptions& options);

/// FNV-1a hash over every semantic field of a target model — the name is
/// deliberately excluded, so two models that evaluate identically share
/// one fingerprint (and cache entries) regardless of what they are
/// called, and same-name models with different parameters never collide.
uint64_t target_fingerprint(const TargetModel& target);

/// Shared state threaded through a pipeline run. Passes communicate
/// exclusively through this context.
struct PassContext {
    PassContext(const KernelContext& context_, const TargetModel& target_,
                const FlowOptions& options_, FlowResult result_)
        : context(context_),
          target(target_),
          options(options_),
          result(std::move(result_)) {}

    const KernelContext& context;
    const TargetModel& target;
    FlowOptions options;  ///< accuracy_db is authoritative (already merged)
    EvalCache* cache = nullptr;

    FlowResult result;

    // --- cross-pass intermediates ---------------------------------------------
    /// Packed views left behind by an extraction pass, for downstream
    /// passes that need the final packed state (scaling optimization).
    std::vector<std::pair<BlockId, PackedView>> packed_views;
    /// Machine kernels produced by the lowering pass (absent on cache hit).
    std::optional<MachineKernel> scalar_machine;
    std::optional<MachineKernel> simd_machine;
    std::optional<MachineKernel> float_machine;
    /// Evaluation memo key (computed by the lowering pass).
    std::optional<uint64_t> eval_key;
    /// Cache hit found by the lowering pass, consumed by cycle eval.
    std::optional<EvalCache::Entry> cached_eval;
    /// True when the pipeline evaluates the float reference.
    bool float_variant = false;
    /// Stage memo key (computed by FlowPipeline::run when a cache is
    /// present) and whether the optimization stages were restored from it
    /// (in which case the pipeline skips them).
    std::optional<uint64_t> stage_key;
    bool stage_restored = false;
};

class Pass {
public:
    virtual ~Pass() = default;
    virtual const char* name() const = 0;
    virtual void run(PassContext& ctx) const = 0;
};

using PassRef = std::shared_ptr<const Pass>;

// --- concrete pass factories ---------------------------------------------------
PassRef make_range_analysis_pass();
PassRef make_iwl_determination_pass();
/// `exact_selection` replaces the greedy per-round pack selection with the
/// branch-and-bound solver (solver/pack_select.hpp) — the "SLP-Optimal"
/// flow; the budget comes from FlowOptions::solver.
PassRef make_slp_aware_wlo_pass(bool exact_selection = false);
PassRef make_tabu_wlo_pass();
/// Exact WLO (solver/wlo_exact.hpp): Tabu incumbent + branch-and-bound
/// over per-node word lengths — the WLO stage of "WLO-Optimal".
PassRef make_wlo_exact_pass();
/// `retain_views` keeps each block's final PackedView in the PassContext
/// for a downstream scaling-optimization pass; leave it off in pipelines
/// that never read them (the views are not small).
PassRef make_plain_slp_pass(bool retain_views = false);
PassRef make_scaling_optim_pass();
PassRef make_lowering_pass();        ///< fixed-point scalar + SIMD lowering
PassRef make_float_lowering_pass();  ///< float-reference lowering
PassRef make_cycle_eval_pass();

/// A named, immutable sequence of passes.
class FlowPipeline {
public:
    FlowPipeline() = default;
    FlowPipeline(std::string name, std::vector<PassRef> passes);

    const std::string& name() const { return name_; }
    const std::vector<PassRef>& passes() const { return passes_; }

    /// Run the pipeline. `options.accuracy_db` is the constraint; `cache`
    /// (optional) memoizes the evaluation stage across runs.
    FlowResult run(const KernelContext& context, const TargetModel& target,
                   const FlowOptions& options,
                   EvalCache* cache = nullptr) const;

private:
    std::string name_;
    std::vector<PassRef> passes_;
};

/// Process-wide registry of flow pipelines. The built-in flows are
/// registered on first access; user code may add its own variants.
/// Lookup is thread-safe; add() must not race with a running sweep.
class FlowRegistry {
public:
    static FlowRegistry& instance();

    /// Register (or replace) a pipeline under its name.
    void add(FlowPipeline pipeline);

    bool contains(const std::string& name) const;

    /// Throws Error for unknown names, listing the registered flows.
    const FlowPipeline& flow(const std::string& name) const;

    /// Registered flow names, sorted.
    std::vector<std::string> names() const;

private:
    FlowRegistry();

    mutable std::mutex mutex_;
    std::map<std::string, FlowPipeline> flows_;
};

}  // namespace slpwlo
