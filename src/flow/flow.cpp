#include "flow/flow.hpp"

#include <cstring>

#include "flow/pass.hpp"
#include "ir/printer.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace slpwlo {

Optimizer optimizer_from_string(const std::string& text) {
    if (text == "heuristic") return Optimizer::Heuristic;
    if (text == "optimal") return Optimizer::Optimal;
    throw Error("unknown optimizer `" + text +
                "` (expected heuristic or optimal)");
}

std::string to_string(Optimizer optimizer) {
    return optimizer == Optimizer::Optimal ? "optimal" : "heuristic";
}

std::string optimal_flow_for(const std::string& flow_name) {
    if (flow_name == "WLO-SLP") return "SLP-Optimal";
    if (flow_name == "WLO-First") return "WLO-Optimal";
    return flow_name;
}

KernelContext::KernelContext(Kernel kernel, const RangeOptions& range,
                             const GainOptions& gains)
    : kernel_(std::move(kernel)),
      range_options_(range),
      gain_options_(gains) {
    // Materialize the kernel's lazy structure caches (block order,
    // enclosing loops) now, while construction is single-threaded: the
    // context is shared across sweep worker threads afterwards, and
    // Kernel's caches are not synchronized.
    kernel_.blocks_in_order();
}

void KernelContext::ensure_ranges() const {
    std::call_once(ranges_once_, [this] {
        ranges_ = analyze_ranges(kernel_, range_options_);
    });
}

void KernelContext::ensure_iwls() const {
    ensure_ranges();
    std::call_once(iwls_once_, [this] {
        spec_template_ = std::make_unique<FixedPointSpec>(
            determine_iwls(kernel_, ranges_));
    });
}

void KernelContext::ensure_evaluator() const {
    std::call_once(evaluator_once_, [this] {
        evaluator_ = std::make_unique<AnalyticEvaluator>(kernel_,
                                                         gain_options_);
    });
}

uint64_t KernelContext::fingerprint() const {
    std::call_once(fingerprint_once_, [this] {
        uint64_t h = hash_name(print_kernel(kernel_));
        // The analytic noise a memo entry stores depends on the gain
        // calibration, so contexts with different GainOptions must not
        // alias.
        auto mix = [&h](uint64_t v) { h = h * 1099511628211ull ^ v; };
        uint64_t delta_bits = 0;
        static_assert(sizeof(delta_bits) == sizeof(gain_options_.delta));
        std::memcpy(&delta_bits, &gain_options_.delta, sizeof(delta_bits));
        mix(delta_bits);
        mix(gain_options_.seed);
        mix(static_cast<uint64_t>(gain_options_.array_samples));
        fingerprint_ = h;
    });
    return fingerprint_;
}

const RangeMap& KernelContext::ranges() const {
    ensure_ranges();
    return ranges_;
}

const AnalyticEvaluator& KernelContext::evaluator() const {
    ensure_evaluator();
    return *evaluator_;
}

FixedPointSpec KernelContext::initial_spec(QuantMode mode) const {
    ensure_iwls();
    FixedPointSpec spec = *spec_template_;
    spec.set_quant_mode(mode);
    return spec;
}

FlowResult run_wlo_slp_flow(const KernelContext& context,
                            const TargetModel& target,
                            const FlowOptions& options) {
    return FlowRegistry::instance().flow("WLO-SLP").run(context, target,
                                                        options);
}

FlowResult run_wlo_first_flow(const KernelContext& context,
                              const TargetModel& target,
                              const FlowOptions& options) {
    return FlowRegistry::instance().flow("WLO-First").run(context, target,
                                                          options);
}

long long float_cycles(const KernelContext& context,
                       const TargetModel& target) {
    return FlowRegistry::instance()
        .flow("Float")
        .run(context, target, FlowOptions{})
        .simd_cycles;
}

}  // namespace slpwlo
