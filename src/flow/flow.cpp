#include "flow/flow.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

KernelContext::KernelContext(Kernel kernel, const RangeOptions& range,
                             const GainOptions& gains)
    : kernel_(std::move(kernel)),
      ranges_(analyze_ranges(kernel_, range)),
      spec_template_(determine_iwls(kernel_, ranges_)),
      evaluator_(std::make_unique<AnalyticEvaluator>(kernel_, gains)) {}

FixedPointSpec KernelContext::initial_spec(QuantMode mode) const {
    FixedPointSpec spec = spec_template_;
    spec.set_quant_mode(mode);
    return spec;
}

namespace {

void measure_cycles(FlowResult& result, const KernelContext& context,
                    const TargetModel& target) {
    const MachineKernel scalar =
        lower_kernel(context.kernel(), &result.spec, nullptr, target,
                     LowerMode::FixedScalar);
    result.scalar_cycles = estimate_cycles(scalar, target).total_cycles;

    const MachineKernel simd =
        lower_kernel(context.kernel(), &result.spec, &result.groups, target,
                     LowerMode::FixedSimd);
    result.simd_cycles = estimate_cycles(simd, target).total_cycles;

    result.analytic_noise_db =
        context.evaluator().noise_power_db(result.spec);
}

}  // namespace

FlowResult run_wlo_slp_flow(const KernelContext& context,
                            const TargetModel& target,
                            const FlowOptions& options) {
    FlowResult result{.flow_name = "WLO-SLP",
                      .kernel_name = context.kernel().name(),
                      .target_name = target.name,
                      .accuracy_db = options.accuracy_db,
                      .spec = context.initial_spec(options.quant_mode)};

    WloSlpOptions wlo = options.wlo_slp;
    wlo.accuracy_db = options.accuracy_db;
    const WloSlpResult out = run_slp_aware_wlo(
        context.kernel(), result.spec, context.evaluator(), target, wlo);

    result.groups = out.block_groups;
    result.slp_stats = out.slp_stats;
    result.scaling_stats = out.scaling_stats;
    result.group_count = out.group_count();
    measure_cycles(result, context, target);
    return result;
}

FlowResult run_wlo_first_flow(const KernelContext& context,
                              const TargetModel& target,
                              const FlowOptions& options) {
    FlowResult result{.flow_name = "WLO-First",
                      .kernel_name = context.kernel().name(),
                      .target_name = target.name,
                      .accuracy_db = options.accuracy_db,
                      .spec = context.initial_spec(options.quant_mode)};

    WloFirstOptions wlo = options.wlo_first;
    wlo.accuracy_db = options.accuracy_db;
    const WloFirstResult out = run_wlo_first(
        context.kernel(), result.spec, context.evaluator(), target, wlo);

    result.groups = out.block_groups;
    result.slp_stats = out.slp_stats;
    result.tabu_stats = out.tabu_stats;
    result.group_count = out.group_count();
    measure_cycles(result, context, target);
    return result;
}

long long float_cycles(const KernelContext& context,
                       const TargetModel& target) {
    const MachineKernel machine = lower_kernel(
        context.kernel(), nullptr, nullptr, target, LowerMode::Float);
    return estimate_cycles(machine, target).total_cycles;
}

}  // namespace slpwlo
