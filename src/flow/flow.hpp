// End-to-end compilation flows (Fig. 3 and Fig. 5), built on the
// FlowEngine (flow/pass.hpp): each flow is a declarative sequence of
// passes registered in the FlowRegistry.
//
// KernelContext bundles the per-kernel preparation that is independent of
// target and constraint — range analysis, IWL determination, noise-gain
// calibration. Artifacts are computed lazily, exactly once, and shared:
// constraint sweeps (flow/sweep.hpp) pay for them once per kernel even
// when sweep points run concurrently (preparation is thread-safe).
//
// Three flows:
//  * run_wlo_slp_flow    — the paper's joint flow (Fig. 3): SLP-aware WLO +
//    accuracy-aware SLP + scaling optimization;
//  * run_wlo_first_flow  — the decoupled baseline (Fig. 5): Tabu WLO, then
//    plain SLP;
//  * float_cycles        — the original single-precision version (Fig. 6
//    reference).
//
// Each fixed-point flow reports both the scalar and the SIMD cycle counts
// of its result; the paper's speedups divide the WLO-First *scalar* cycles
// by each flow's SIMD cycles (Section V.A, equation 2).
#pragma once

#include <memory>
#include <mutex>

#include "accuracy/analytic_evaluator.hpp"
#include "accuracy/sim_backend.hpp"
#include "core/wlo_first.hpp"
#include "fixpoint/iwl.hpp"
#include "lower/lowering.hpp"
#include "schedule/cycle_model.hpp"

namespace slpwlo {

/// The `--optimizer` sweep axis: run each point's flow as registered
/// (`Heuristic`), or substitute the exact branch-and-bound counterpart
/// (`Optimal`) at flow-resolution time — "WLO-SLP" runs as "SLP-Optimal"
/// and "WLO-First" as "WLO-Optimal" (see optimal_flow_for). Unlike the
/// `--evaluator` axis this changes *outcomes*, so it is part of every
/// identity: memo keys, manifests, report bytes.
enum class Optimizer { Heuristic, Optimal };

/// Parse "heuristic" / "optimal"; an unknown spelling throws Error
/// listing the valid values sorted (the shard_strategy_from_string /
/// targets::by_name convention).
Optimizer optimizer_from_string(const std::string& text);
std::string to_string(Optimizer optimizer);

/// The exact counterpart a flow resolves to under Optimizer::Optimal:
/// "WLO-SLP" -> "SLP-Optimal", "WLO-First" -> "WLO-Optimal"; flows
/// without an exact counterpart (Float, WLO-First+Scaling, the optimal
/// flows themselves) resolve to themselves.
std::string optimal_flow_for(const std::string& flow_name);

/// Exact-search knobs of the optimal flows. The budget changes which
/// incumbent an out-of-budget search returns, so — unlike the evaluator
/// backend — every field here is mixed into stage memo keys and
/// serialized into shard manifests.
struct SolverOptions {
    Optimizer optimizer = Optimizer::Heuristic;
    solver::SolveBudget budget;
};

/// Exact-search outcome of one flow run (zero / `ran == false` for the
/// heuristic flows). Deterministic under the default node budget, but —
/// like measured_ns — excluded from identity bytes: default to_json
/// omits it, so a wall-clock budget (which makes node counts machine-
/// dependent) can never change report identity.
struct SolverStats {
    bool ran = false;
    /// Branch-and-bound nodes expanded, summed over all solves.
    long long nodes = 0;
    /// Number of exact solves (one for WLO-Optimal; one per extraction
    /// round per block for SLP-Optimal).
    long long solves = 0;
    /// Every solve exhausted its search space within budget.
    bool proven_optimal = false;
    /// Objective of the heuristic incumbent(s) the search started from
    /// (Tabu cost, or summed greedy pack benefit).
    double heuristic_objective = 0.0;
    /// Objective of the returned solution; never worse than
    /// heuristic_objective.
    double best_objective = 0.0;
    /// Improvement of the exact answer over the heuristic, in objective
    /// units, >= 0 (cost reduction for WLO-Optimal, benefit increase for
    /// SLP-Optimal).
    double gap = 0.0;
};

struct FlowOptions {
    /// Accuracy constraint in dB.
    double accuracy_db = -40.0;
    QuantMode quant_mode = QuantMode::Truncate;
    WloSlpOptions wlo_slp;      ///< accuracy_db is overridden
    WloFirstOptions wlo_first;  ///< accuracy_db is overridden
    /// Bit-accurate noise backend for simulation-backed verification:
    /// measured_noise_db, and the post-flow `measure` hook (FlowResult::
    /// sim_noise_db). All three backends produce bit-identical noise
    /// power; `compiled` is the fast path and silently degrades to the
    /// tape when no host compiler is usable. Execution-strategy only:
    /// excluded from stage_memo_key and from options_to_json, so switching
    /// backends can never split the cache or change report bytes.
    SimBackend evaluator = SimBackend::Tape;
    /// Time the compiled kernel body after the flow (FlowResult::
    /// measured_ns). Observational, like `evaluator`: excluded from memo
    /// keys and default report bytes.
    bool measure = false;
    /// Exact-search configuration (outcome-changing: memoized and
    /// serialized, unlike `evaluator`/`measure`).
    SolverOptions solver;
};

class KernelContext {
public:
    explicit KernelContext(Kernel kernel, const RangeOptions& range = {},
                           const GainOptions& gains = {});

    const Kernel& kernel() const { return kernel_; }

    /// Value ranges (computed on first use, then shared).
    const RangeMap& ranges() const;

    /// Analytic evaluator; construction calibrates the noise gains once.
    const AnalyticEvaluator& evaluator() const;

    /// Fresh spec with IWLs determined (FWLs zero; flows set WLs).
    FixedPointSpec initial_spec(QuantMode mode = QuantMode::Truncate) const;

    // --- FlowEngine preparation hooks ------------------------------------------
    // Idempotent and thread-safe: each artifact is computed exactly once
    // (std::call_once) no matter how many sweep threads ask for it.
    void ensure_ranges() const;
    void ensure_iwls() const;      ///< implies ensure_ranges()
    void ensure_evaluator() const;

    /// Content hash of the kernel's full printed structure and the gain
    /// calibration options (not just the kernel name) — memo keys use it
    /// so same-name kernels with different configurations or calibrations
    /// cannot alias. Computed once, lazily.
    uint64_t fingerprint() const;

private:
    Kernel kernel_;
    RangeOptions range_options_;
    GainOptions gain_options_;

    mutable std::once_flag ranges_once_;
    mutable std::once_flag iwls_once_;
    mutable std::once_flag evaluator_once_;
    mutable std::once_flag fingerprint_once_;
    mutable RangeMap ranges_;
    mutable std::unique_ptr<FixedPointSpec> spec_template_;
    mutable std::unique_ptr<AnalyticEvaluator> evaluator_;
    mutable uint64_t fingerprint_ = 0;
};

struct FlowResult {
    std::string flow_name;
    std::string kernel_name;
    std::string target_name;
    /// Content fingerprint of the resolved target model (name-free; see
    /// target_fingerprint in flow/pass.hpp) — identifies the exact model
    /// the point ran against even when names collide or derive variants.
    uint64_t target_fp = 0;
    double accuracy_db = 0.0;

    FixedPointSpec spec;  ///< the final fixed-point specification
    std::vector<BlockGroups> groups;

    long long scalar_cycles = 0;  ///< fixed-point code, no SIMD
    long long simd_cycles = 0;    ///< fixed-point code with the groups
    double analytic_noise_db = 0.0;

    SlpStats slp_stats;
    ScalingStats scaling_stats;  ///< WLO-SLP only
    TabuStats tabu_stats;        ///< WLO-First / WLO-Optimal only
    SolverStats solver_stats;    ///< WLO-Optimal / SLP-Optimal only
    int group_count = 0;

    /// Median wall time of one compiled kernel execution in nanoseconds
    /// (exec/measured_cost.hpp); 0 unless FlowOptions::measure was set and
    /// the compiled backend was usable. Like per-slot micros, this is a
    /// measurement, not an outcome: it is excluded from every identity
    /// fingerprint and from default to_json bytes.
    long long measured_ns = 0;
    /// Simulation-verified noise of the final spec, run on the configured
    /// FlowOptions::evaluator backend; 0 unless `measure` was set. All
    /// backends are bit-identical, so this can never differ across
    /// `--evaluator` choices — it exists to execute the chosen backend
    /// (and its degradation path) during real sweeps, and as a sim-vs-
    /// analytic cross-check. Observational, like measured_ns.
    double sim_noise_db = 0.0;
};

FlowResult run_wlo_slp_flow(const KernelContext& context,
                            const TargetModel& target,
                            const FlowOptions& options);

FlowResult run_wlo_first_flow(const KernelContext& context,
                              const TargetModel& target,
                              const FlowOptions& options);

/// Cycles of the original single-precision floating-point version.
long long float_cycles(const KernelContext& context,
                       const TargetModel& target);

}  // namespace slpwlo
