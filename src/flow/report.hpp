// Reporting helpers shared by the experiment harnesses in bench/:
// human-readable one-liners and machine-readable JSON.
#pragma once

#include <string>

#include "flow/flow.hpp"

namespace slpwlo {

/// Speedup as the paper defines it (equation 2): cycles of the reference
/// version divided by cycles of the measured version.
double speedup(long long reference_cycles, long long measured_cycles);

/// A content fingerprint as 16 lowercase hex digits (the form reports
/// and JSON emission use for target fingerprints).
std::string fingerprint_hex(uint64_t fingerprint);

/// One-line summary of a flow result.
std::string summarize(const FlowResult& result);

/// Multi-line WL histogram of a spec (how many nodes at each WL) — a quick
/// visual of what the optimizer decided.
std::string wl_histogram(const FixedPointSpec& spec);

/// Measured (bit-accurate simulation) noise power of a flow result in dB.
double measured_noise_db(const KernelContext& context,
                         const FlowResult& result, int runs = 2);

/// Same measurement through a selectable backend (tape, walker or
/// compiled — exec/compiled_evaluator.hpp's make_noise_evaluator). Every
/// backend returns bit-identical noise power; `compiled` degrades to the
/// tape when no host compiler is usable.
double measured_noise_db(const KernelContext& context,
                         const FlowResult& result, int runs,
                         SimBackend backend);

// --- structured emission -------------------------------------------------------

/// JSON string literal with the required escapes.
std::string json_escape(const std::string& text);

/// JSON number; non-finite values (e.g. the -inf noise of an exact spec)
/// become null, as JSON has no Infinity.
std::string json_number(double value);

/// One FlowResult as a single JSON object: flow/kernel/target identity,
/// the constraint, cycle counts, analytic noise, group count, the WL
/// histogram, and the per-flow optimizer statistics.
///
/// `include_measured` additionally emits "measured_ns", "sim_noise_db",
/// and — for the exact flows — the "solver" statistics object (nodes,
/// proven_optimal, heuristic-vs-optimal gap). It defaults off so
/// default report bytes — and everything fingerprinted from them — stay
/// independent of wall-clock measurements (same discipline as per-slot
/// micros in shard result rows).
std::string to_json(const FlowResult& result, bool include_measured = false);

}  // namespace slpwlo
