// Reporting helpers shared by the experiment harnesses in bench/.
#pragma once

#include <string>

#include "flow/flow.hpp"

namespace slpwlo {

/// Speedup as the paper defines it (equation 2): cycles of the reference
/// version divided by cycles of the measured version.
double speedup(long long reference_cycles, long long measured_cycles);

/// One-line summary of a flow result.
std::string summarize(const FlowResult& result);

/// Multi-line WL histogram of a spec (how many nodes at each WL) — a quick
/// visual of what the optimizer decided.
std::string wl_histogram(const FixedPointSpec& spec);

/// Measured (bit-accurate simulation) noise power of a flow result in dB.
double measured_noise_db(const KernelContext& context,
                         const FlowResult& result, int runs = 2);

}  // namespace slpwlo
