// WorkSource: the lease-based seam between "what work is there" and "how
// it runs".
//
// Every execution path in the project is the same loop: take some sweep
// points, run them on a SweepDriver, hand the results back to whoever is
// assembling the report. Before this API the loop existed three times —
// SweepDriver::run over a whole grid, dist::run_shard over a static shard
// plan, and the slpwlo-shard CLI around both — each hard-coding its own
// notion of "what do I run next". WorkSource abstracts that seam once:
//
//   acquire(max_slots) -> Lease      some slots and their points
//   complete(lease, rows)            results (plus measured wall-clock)
//   abandon(lease)                   the work goes back to the pool
//
// and SweepService is the one consumer: it drains any source through a
// SweepDriver, producing results whose bytes are identical no matter how
// the work was chopped into leases (the driver's slot-ordered determinism
// guarantee). Sources differ only in where work lives:
//
//   VectorSource          a point vector in this process (SweepDriver::run
//                         is now a thin wrapper over it);
//   dist::PlanSource      a static shard plan / manifest (run_shard);
//   dist::LeaseWorkSource a shared lease directory handing slot ranges to
//                         worker processes on demand (elastic sweeps with
//                         expiry and re-issue; dist/lease_coordinator.hpp).
//
// A source is consumed by one service at a time (methods are not
// thread-safe); concurrency across *workers* comes from several processes
// or threads each draining their own source object over shared state.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "flow/sweep.hpp"

namespace slpwlo {

/// One unit of acquired work: parallel slot/point arrays, slots ascending.
/// `id` identifies the lease to its source (a chunk index for lease
/// directories; sources that never re-issue may leave it 0).
struct Lease {
    uint64_t id = 0;
    std::vector<size_t> slots;       ///< grid slots, ascending
    std::vector<SweepPoint> points;  ///< points[i] runs at slots[i]

    bool empty() const { return points.empty(); }
};

/// One completed point of a lease: the sweep result plus its measured
/// wall-clock. The measurement is for cost models and scheduling — it is
/// never part of report bytes or fingerprints (reports stay bit-identical
/// across thread counts, machines and re-runs).
struct WorkRow {
    SweepResult result;
    long long micros = 0;  ///< measured wall-clock, microseconds
};

/// Where sweep work comes from and where results go. acquire() returning
/// an empty lease means the source is drained — for sources shared across
/// workers it may block (poll) while other workers still hold leases that
/// could expire back into the pool.
class WorkSource {
public:
    virtual ~WorkSource() = default;

    /// Number of grid slots this source covers (for sizing and progress).
    virtual size_t total_slots() const = 0;

    /// Acquire up to `max_slots` slots of work (0 = no bound; sources
    /// with a natural granularity, e.g. pre-chopped lease chunks, may
    /// round a positive bound up to it). Empty lease <=> drained.
    virtual Lease acquire(size_t max_slots) = 0;

    /// Report a lease finished; `rows[i]` corresponds to
    /// `lease.points[i]`.
    virtual void complete(const Lease& lease, std::vector<WorkRow> rows) = 0;

    /// Return a lease unfinished; its slots become acquirable again.
    virtual void abandon(const Lease& lease) = 0;
};

/// A point vector as a work source: slots are the vector indices, results
/// accumulate in slot order. This is SweepDriver::run's backing source.
class VectorSource final : public WorkSource {
public:
    explicit VectorSource(std::vector<SweepPoint> points);

    size_t total_slots() const override { return points_.size(); }
    Lease acquire(size_t max_slots) override;
    void complete(const Lease& lease, std::vector<WorkRow> rows) override;
    void abandon(const Lease& lease) override;

    /// All rows in slot order; throws when any slot was never completed.
    std::vector<WorkRow> take_rows();

    /// take_rows() stripped to the results (the SweepDriver::run shape).
    std::vector<SweepResult> take_results();

private:
    std::vector<SweepPoint> points_;
    std::deque<size_t> pending_;  ///< un-leased slots, ascending
    std::vector<std::optional<WorkRow>> rows_;
};

/// The one execution loop behind every sweep entry point: acquire, run on
/// a SweepDriver, complete; abandon and rethrow when a point fails. The
/// report bytes produced from the rows are independent of how the source
/// chops work into leases (driver results are slot-deterministic).
class SweepService {
public:
    /// Own a driver configured with `options`.
    explicit SweepService(ExecOptions options = {});
    /// Borrow an existing driver (shared contexts and EvalCache).
    explicit SweepService(SweepDriver& driver);
    ~SweepService();

    SweepDriver& driver() { return *driver_; }
    const SweepDriver& driver() const { return *driver_; }

    /// Pump the source dry: acquire up to `max_slots` (0 = everything the
    /// source will give at once), run, complete, repeat until an empty
    /// lease. Returns the number of points executed by *this* service —
    /// under elastic sources other workers may have run the rest.
    size_t drain(WorkSource& source, size_t max_slots = 0);

private:
    std::unique_ptr<SweepDriver> owned_;
    SweepDriver* driver_;
};

}  // namespace slpwlo
