#include "flow/sweep.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <sstream>

#include "exec/jit_cache.hpp"
#include "flow/report.hpp"
#include "frontend/kernel_file.hpp"
#include "flow/work_source.hpp"
#include "support/diagnostics.hpp"
#include "support/thread_pool.hpp"
#include "target/target_model.hpp"

namespace slpwlo {

SweepDriver::SweepDriver(SweepOptions options)
    : options_(std::move(options)) {
    if (options_.cache_capacity.has_value()) {
        eval_cache_.set_capacity(*options_.cache_capacity);
    }
}

SweepDriver::~SweepDriver() = default;

std::vector<SweepPoint> SweepDriver::grid(
    const std::vector<std::string>& kernels,
    const std::vector<std::string>& targets,
    const std::vector<std::string>& flows,
    const std::vector<double>& constraints) {
    std::vector<SweepPoint> points;
    points.reserve(kernels.size() * targets.size() * flows.size() *
                   constraints.size());
    for (const std::string& kernel : kernels) {
        for (const std::string& target : targets) {
            for (const std::string& flow : flows) {
                for (const double a : constraints) {
                    points.push_back(SweepPoint{kernel, target, flow, a, {}, {}});
                }
            }
        }
    }
    return points;
}

std::vector<SweepPoint> SweepDriver::grid(
    const std::vector<std::string>& kernels,
    const std::vector<std::string>& targets,
    const std::vector<int>& simd_widths,
    const std::vector<std::string>& flows,
    const std::vector<double>& constraints) {
    std::vector<SweepPoint> points;
    points.reserve(kernels.size() * targets.size() * simd_widths.size() *
                   flows.size() * constraints.size());
    for (const std::string& target : targets) {
        const TargetModel base = targets::by_name(target);
        for (const int width : simd_widths) {
            // Width 0 keeps the base model; a positive width spawns the
            // derived variant once and shares it across the inner axes.
            const TargetModel model =
                width == 0 ? base : base.with_simd_width(width);
            for (const std::string& kernel : kernels) {
                for (const std::string& flow : flows) {
                    for (const double a : constraints) {
                        points.push_back(SweepPoint{kernel, model.name, flow,
                                                    a, {}, model});
                    }
                }
            }
        }
    }
    return points;
}

const KernelContext& SweepDriver::context(const std::string& kernel_name) {
    std::lock_guard<std::mutex> lock(contexts_mutex_);
    auto& slot = contexts_[kernel_name];
    if (!slot) {
        kernels::BenchmarkKernel bench =
            kernels::make_benchmark_kernel(kernel_name);
        slot = std::make_unique<KernelContext>(std::move(bench.kernel),
                                               bench.range_options);
    }
    return *slot;
}

std::vector<SweepResult> SweepDriver::run(
    const std::vector<SweepPoint>& points) {
    // The whole grid as one in-process work source, drained through the
    // same service the sharded and elastic paths use. A full-size lease
    // keeps the historical behavior: one pool run over every point.
    VectorSource source(points);
    SweepService service(*this);
    service.drain(source);
    return source.take_results();
}

std::vector<SweepResult> SweepDriver::run_timed(
    const std::vector<SweepPoint>& points,
    std::vector<long long>* micros_out) {
    // Resolve the per-point ingredients up front so configuration errors
    // (unknown kernel / target / flow) surface before any thread spawns.
    struct Job {
        const KernelContext* context;
        TargetModel target;
        const FlowPipeline* pipeline;
        FlowOptions options;
    };
    std::vector<Job> jobs;
    jobs.reserve(points.size());
    for (const SweepPoint& point : points) {
        Job job;
        // A point carrying its kernel's DSL source (a manifest point for
        // a file-based kernel) registers it before the name resolves —
        // idempotent for identical content, an error for a name clash.
        if (point.kernel_source.has_value()) {
            frontend::register_kernel_source(*point.kernel_source,
                                             "<point " + point.kernel + ">");
        }
        job.context = &context(point.kernel);
        if (point.target_model.has_value()) {
            point.target_model->validate();
            job.target = *point.target_model;
        } else {
            job.target = targets::by_name(point.target);
        }
        job.options = point.options.value_or(options_.flow_options);
        job.options.accuracy_db = point.accuracy_db;
        // The `--optimizer` axis resolves here: under Optimizer::Optimal a
        // heuristic flow name runs as its exact counterpart (WLO-SLP ->
        // SLP-Optimal, WLO-First -> WLO-Optimal). The pipeline stamps its
        // own name into the result, so rows are byte-identical whether the
        // point named the exact flow directly or reached it via the axis.
        job.pipeline = &FlowRegistry::instance().flow(
            job.options.solver.optimizer == Optimizer::Optimal
                ? optimal_flow_for(point.flow)
                : point.flow);
        jobs.push_back(std::move(job));
    }

    EvalCache* cache = options_.memoize ? &eval_cache_ : nullptr;
    std::vector<std::optional<FlowResult>> slots(points.size());
    std::vector<long long> micros(points.size(), 0);
    std::exception_ptr first_error;
    std::mutex error_mutex;

    if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.threads);
    ThreadPool& pool = *pool_;
    for (size_t i = 0; i < jobs.size(); ++i) {
        pool.submit([&, i] {
            try {
                const Job& job = jobs[i];
                const auto start = std::chrono::steady_clock::now();
                slots[i] = job.pipeline->run(*job.context, job.target,
                                             job.options, cache);
                micros[i] = std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count();
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        });
    }
    pool.wait_idle();

    if (first_error) std::rethrow_exception(first_error);

    std::vector<SweepResult> results;
    results.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        SLPWLO_ASSERT(slots[i].has_value(), "sweep point produced no result");
        results.push_back(SweepResult{points[i], std::move(*slots[i])});
    }
    if (micros_out != nullptr) *micros_out = std::move(micros);
    return results;
}

SweepCacheStats SweepDriver::cache_stats() const {
    SweepCacheStats stats;
    stats.eval_hits = eval_cache_.hits();
    stats.eval_misses = eval_cache_.misses();
    stats.eval_entries = eval_cache_.size();
    stats.stage_hits = eval_cache_.stage_hits();
    stats.stage_misses = eval_cache_.stage_misses();
    stats.stage_entries = eval_cache_.stage_size();
    {
        std::lock_guard<std::mutex> lock(contexts_mutex_);
        stats.contexts = contexts_.size();
    }
    const exec::JitCacheStats jit = exec::jit_cache_stats();
    stats.jit_hits = jit.hits;
    stats.jit_builds = jit.builds;
    return stats;
}

std::vector<double> accuracy_grid(double from, double to, double step) {
    SLPWLO_CHECK(step > 0.0, "accuracy_grid step must be positive");
    std::vector<double> grid;
    for (double a = from; a >= to; a -= step) grid.push_back(a);
    return grid;
}

namespace {

std::string slp_options_to_json(const SlpOptions& slp) {
    std::ostringstream os;
    os << "{\"benefit_mode\":"
       << (slp.benefit_mode == BenefitMode::ReuseOverCost
               ? "\"reuse-over-cost\""
               : "\"savings-only\"")
       << ",\"min_benefit\":" << json_number(slp.min_benefit) << "}";
    return os.str();
}

/// The option fields a per-point override can vary (both flows' ablation
/// axes); emitted alongside the result so variant rows stay
/// distinguishable. The evaluator/measure fields are deliberately absent:
/// they select an execution strategy, not an outcome, so rows produced
/// under different backends must stay byte-identical.
std::string options_to_json(const FlowOptions& options) {
    std::ostringstream os;
    os << "{\"quant_mode\":"
       << (options.quant_mode == QuantMode::Truncate ? "\"truncate\""
                                                     : "\"round\"")
       << ",\"wlo_slp\":{\"scaling_optim\":"
       << (options.wlo_slp.scaling_optim ? "true" : "false")
       << ",\"accuracy_conflicts\":"
       << (options.wlo_slp.accuracy_conflicts ? "true" : "false")
       << ",\"strict_feasibility\":"
       << (options.wlo_slp.strict_feasibility ? "true" : "false")
       << ",\"slp\":" << slp_options_to_json(options.wlo_slp.slp) << "}"
       << ",\"wlo_first\":{\"slp\":"
       << slp_options_to_json(options.wlo_first.slp)
       << ",\"tabu\":{\"max_iterations\":"
       << options.wlo_first.tabu.max_iterations
       << ",\"tenure\":" << options.wlo_first.tabu.tenure
       << ",\"stagnation_limit\":" << options.wlo_first.tabu.stagnation_limit
       << ",\"infeasibility_penalty\":"
       << json_number(options.wlo_first.tabu.infeasibility_penalty)
       << "}}"
       << ",\"solver\":{\"optimizer\":\""
       << to_string(options.solver.optimizer)
       << "\",\"max_nodes\":" << options.solver.budget.max_nodes
       << ",\"max_millis\":" << options.solver.budget.max_millis << "}}";
    return os.str();
}

}  // namespace

std::string sweep_result_to_json(const SweepResult& result) {
    // Splice the point's option overrides into the result object so
    // ablation variants with identical flow/kernel/target/constraint
    // stay distinguishable.
    std::string object = to_json(result.flow);
    if (result.point.options.has_value()) {
        object.back() = ',';
        object += "\"options\":" + options_to_json(*result.point.options) + "}";
    }
    return object;
}

std::string sweep_to_json(const std::vector<SweepResult>& results) {
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < results.size(); ++i) {
        if (i != 0) os << ",";
        os << "\n  " << sweep_result_to_json(results[i]);
    }
    os << "\n]\n";
    return os.str();
}

std::string cache_stats_to_json(const SweepCacheStats& stats) {
    std::ostringstream os;
    os << "{\"hits\":" << stats.eval_hits << ",\"misses\":" << stats.eval_misses
       << ",\"entries\":" << stats.eval_entries
       << ",\"stage_hits\":" << stats.stage_hits
       << ",\"stage_misses\":" << stats.stage_misses
       << ",\"stage_entries\":" << stats.stage_entries
       << ",\"contexts\":" << stats.contexts;
    // JIT traffic appears only when the compiled backend actually ran, so
    // tape/walker sweeps keep their historical report bytes.
    if (stats.jit_hits != 0 || stats.jit_builds != 0) {
        os << ",\"jit_hits\":" << stats.jit_hits
           << ",\"jit_builds\":" << stats.jit_builds;
    }
    os << "}";
    return os.str();
}

std::string sweep_to_json(const std::vector<SweepResult>& results,
                          const SweepCacheStats& stats) {
    std::string array = sweep_to_json(results);
    // The plain array ends with "\n]\n"; keep its layout inside the
    // wrapper so the "results" payload stays byte-identical to the
    // standalone form (minus the trailing newline).
    array.pop_back();
    return "{\"results\":" + array +
           ",\"eval_cache\":" + cache_stats_to_json(stats) + "}\n";
}

}  // namespace slpwlo
