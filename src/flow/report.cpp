#include "flow/report.hpp"

#include <map>
#include <sstream>

#include "accuracy/sim_evaluator.hpp"
#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace slpwlo {

double speedup(long long reference_cycles, long long measured_cycles) {
    SLPWLO_CHECK(measured_cycles > 0, "measured cycles must be positive");
    return static_cast<double>(reference_cycles) /
           static_cast<double>(measured_cycles);
}

std::string summarize(const FlowResult& result) {
    std::ostringstream os;
    os << result.flow_name << " " << result.kernel_name << " @ "
       << result.target_name << " A=" << format_double(result.accuracy_db, 4)
       << "dB: groups=" << result.group_count
       << " scalar=" << result.scalar_cycles
       << " simd=" << result.simd_cycles
       << " noise=" << format_double(result.analytic_noise_db, 4) << "dB";
    return os.str();
}

std::string wl_histogram(const FixedPointSpec& spec) {
    std::map<int, int> counts;
    for (const NodeRef node : spec.nodes()) {
        counts[spec.format(node).wl()]++;
    }
    std::ostringstream os;
    for (const auto& [wl, count] : counts) {
        os << "  wl" << wl << ": " << count << " nodes\n";
    }
    return os.str();
}

double measured_noise_db(const KernelContext& context,
                         const FlowResult& result, int runs) {
    const SimulationEvaluator sim(context.kernel(), runs);
    return sim.noise_power_db(result.spec);
}

}  // namespace slpwlo
