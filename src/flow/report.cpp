#include "flow/report.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "accuracy/sim_evaluator.hpp"
#include "exec/compiled_evaluator.hpp"
#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace slpwlo {

double speedup(long long reference_cycles, long long measured_cycles) {
    SLPWLO_CHECK(measured_cycles > 0, "measured cycles must be positive");
    return static_cast<double>(reference_cycles) /
           static_cast<double>(measured_cycles);
}

std::string fingerprint_hex(uint64_t fingerprint) {
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return std::string(buffer);
}

std::string summarize(const FlowResult& result) {
    std::ostringstream os;
    os << result.flow_name << " " << result.kernel_name << " @ "
       << result.target_name << "[" << fingerprint_hex(result.target_fp)
       << "] A=" << format_double(result.accuracy_db, 4)
       << "dB: groups=" << result.group_count
       << " scalar=" << result.scalar_cycles
       << " simd=" << result.simd_cycles
       << " noise=" << format_double(result.analytic_noise_db, 4) << "dB";
    return os.str();
}

namespace {

std::map<int, int> wl_counts(const FixedPointSpec& spec) {
    std::map<int, int> counts;
    for (const NodeRef node : spec.nodes()) {
        counts[spec.format(node).wl()]++;
    }
    return counts;
}

}  // namespace

std::string wl_histogram(const FixedPointSpec& spec) {
    std::ostringstream os;
    for (const auto& [wl, count] : wl_counts(spec)) {
        os << "  wl" << wl << ": " << count << " nodes\n";
    }
    return os.str();
}

double measured_noise_db(const KernelContext& context,
                         const FlowResult& result, int runs) {
    const SimulationEvaluator sim(context.kernel(), runs);
    return sim.noise_power_db(result.spec);
}

double measured_noise_db(const KernelContext& context,
                         const FlowResult& result, int runs,
                         SimBackend backend) {
    const std::unique_ptr<AccuracyEvaluator> evaluator =
        exec::make_noise_evaluator(context.kernel(), backend, runs);
    return evaluator->noise_power_db(result.spec);
}

std::string json_escape(const std::string& text) {
    std::ostringstream os;
    os << '"';
    for (const char c : text) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
    return os.str();
}

std::string json_number(double value) {
    if (!std::isfinite(value)) return "null";
    return format_double(value, 10);
}

std::string to_json(const FlowResult& result, bool include_measured) {
    std::ostringstream os;
    os << "{\"flow\":" << json_escape(result.flow_name)
       << ",\"kernel\":" << json_escape(result.kernel_name)
       << ",\"target\":" << json_escape(result.target_name)
       << ",\"target_fingerprint\":\"" << fingerprint_hex(result.target_fp)
       << "\",\"accuracy_db\":" << json_number(result.accuracy_db)
       << ",\"scalar_cycles\":" << result.scalar_cycles
       << ",\"simd_cycles\":" << result.simd_cycles
       << ",\"analytic_noise_db\":" << json_number(result.analytic_noise_db)
       << ",\"groups\":" << result.group_count;

    os << ",\"wl_histogram\":{";
    bool first = true;
    for (const auto& [wl, count] : wl_counts(result.spec)) {
        if (!first) os << ",";
        first = false;
        os << "\"" << wl << "\":" << count;
    }
    os << "}";

    os << ",\"slp\":{\"rounds\":" << result.slp_stats.rounds
       << ",\"candidates\":" << result.slp_stats.candidates_seen
       << ",\"selected\":" << result.slp_stats.selected << "}";
    os << ",\"scaling\":{\"examined\":"
       << result.scaling_stats.reuses_examined
       << ",\"equalized\":" << result.scaling_stats.equalized
       << ",\"reverted\":" << result.scaling_stats.reverted << "}";
    os << ",\"tabu\":{\"iterations\":" << result.tabu_stats.iterations
       << ",\"feasible\":" << (result.tabu_stats.feasible ? "true" : "false")
       << "}";
    if (include_measured) {
        os << ",\"measured_ns\":" << result.measured_ns
           << ",\"sim_noise_db\":" << json_number(result.sim_noise_db);
        // Solver statistics live in the measured-extras region: like
        // measured_ns they are diagnostics, not identity — a wall-clock
        // solver budget would otherwise make report bytes machine-dependent.
        if (result.solver_stats.ran) {
            const SolverStats& sv = result.solver_stats;
            os << ",\"solver\":{\"nodes\":" << sv.nodes
               << ",\"solves\":" << sv.solves << ",\"proven_optimal\":"
               << (sv.proven_optimal ? "true" : "false")
               << ",\"heuristic_objective\":"
               << json_number(sv.heuristic_objective)
               << ",\"best_objective\":" << json_number(sv.best_objective)
               << ",\"gap\":" << json_number(sv.gap) << "}";
        }
    }
    os << "}";
    return os.str();
}

}  // namespace slpwlo
