#include "flow/pass.hpp"

#include <algorithm>
#include <cstring>

#include "core/slp_aware_wlo.hpp"
#include "core/tabu_wlo.hpp"
#include "core/wlo_first.hpp"
#include "solver/wlo_exact.hpp"
#include "exec/compiled_evaluator.hpp"
#include "exec/measured_cost.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {

// --- EvalCache -----------------------------------------------------------------

bool EvalCache::Entry::operator==(const Entry& other) const {
    // Bit-wise on the noise double: snapshot round-trips are bit-exact,
    // and -inf (an exact spec) must compare equal to itself.
    uint64_t a, b;
    std::memcpy(&a, &analytic_noise_db, sizeof(a));
    std::memcpy(&b, &other.analytic_noise_db, sizeof(b));
    return scalar_cycles == other.scalar_cycles &&
           simd_cycles == other.simd_cycles && a == b;
}

namespace {

uint64_t double_bits(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

}  // namespace

bool EvalCache::StageEntry::operator==(const StageEntry& other) const {
    if (quant_mode != other.quant_mode || group_count != other.group_count) {
        return false;
    }
    if (formats.size() != other.formats.size()) return false;
    for (size_t i = 0; i < formats.size(); ++i) {
        if (formats[i].iwl != other.formats[i].iwl ||
            formats[i].fwl != other.formats[i].fwl) {
            return false;
        }
    }
    if (groups.size() != other.groups.size()) return false;
    for (size_t i = 0; i < groups.size(); ++i) {
        if (groups[i].block != other.groups[i].block ||
            groups[i].groups.size() != other.groups[i].groups.size()) {
            return false;
        }
        for (size_t g = 0; g < groups[i].groups.size(); ++g) {
            if (groups[i].groups[g].lanes != other.groups[i].groups[g].lanes) {
                return false;
            }
        }
    }
    const SlpStats& s = slp_stats;
    const SlpStats& os = other.slp_stats;
    if (s.rounds != os.rounds || s.candidates_seen != os.candidates_seen ||
        s.invalid_candidates != os.invalid_candidates ||
        s.structural_conflicts != os.structural_conflicts ||
        s.extra_conflicts != os.extra_conflicts || s.selected != os.selected ||
        s.rejected_at_select != os.rejected_at_select ||
        s.devirtualized != os.devirtualized) {
        return false;
    }
    const ScalingStats& c = scaling_stats;
    const ScalingStats& oc = other.scaling_stats;
    if (c.reuses_examined != oc.reuses_examined ||
        c.already_uniform != oc.already_uniform ||
        c.equalized != oc.equalized || c.reverted != oc.reverted ||
        c.skipped_negative != oc.skipped_negative ||
        c.skipped_shared_node != oc.skipped_shared_node) {
        return false;
    }
    const TabuStats& t = tabu_stats;
    const TabuStats& ot = other.tabu_stats;
    if (t.iterations != ot.iterations || t.improvements != ot.improvements ||
        double_bits(t.initial_cost) != double_bits(ot.initial_cost) ||
        double_bits(t.best_cost) != double_bits(ot.best_cost) ||
        t.feasible != ot.feasible) {
        return false;
    }
    const SolverStats& v = solver_stats;
    const SolverStats& ov = other.solver_stats;
    return v.ran == ov.ran && v.nodes == ov.nodes && v.solves == ov.solves &&
           v.proven_optimal == ov.proven_optimal &&
           double_bits(v.heuristic_objective) ==
               double_bits(ov.heuristic_objective) &&
           double_bits(v.best_objective) == double_bits(ov.best_objective) &&
           double_bits(v.gap) == double_bits(ov.gap);
}

std::optional<EvalCache::Entry> EvalCache::lookup(uint64_t key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        misses_++;
        return std::nullopt;
    }
    hits_++;
    return it->second;
}

bool EvalCache::contains(uint64_t key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find(key) != entries_.end();
}

void EvalCache::store(uint64_t key, const Entry& entry) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!entries_.emplace(key, entry).second) return;  // first store wins
    insertion_order_.push_back(key);
    evict_to_capacity_locked();
}

size_t EvalCache::hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

size_t EvalCache::misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

size_t EvalCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void EvalCache::set_capacity(size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    evict_to_capacity_locked();
}

size_t EvalCache::capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

size_t EvalCache::evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::vector<std::pair<uint64_t, EvalCache::Entry>> EvalCache::export_entries()
    const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<uint64_t, Entry>> out(entries_.begin(),
                                                entries_.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
}

std::optional<EvalCache::StageEntry> EvalCache::lookup_stage(
    uint64_t key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = stage_entries_.find(key);
    if (it == stage_entries_.end()) {
        stage_misses_++;
        return std::nullopt;
    }
    stage_hits_++;
    return it->second;
}

bool EvalCache::contains_stage(uint64_t key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stage_entries_.find(key) != stage_entries_.end();
}

void EvalCache::store_stage(uint64_t key, const StageEntry& entry) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stage_entries_.emplace(key, entry).second) return;  // first store wins
    stage_insertion_order_.push_back(key);
    evict_to_capacity_locked();
}

size_t EvalCache::stage_hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stage_hits_;
}

size_t EvalCache::stage_misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stage_misses_;
}

size_t EvalCache::stage_size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stage_entries_.size();
}

std::vector<std::pair<uint64_t, EvalCache::StageEntry>>
EvalCache::export_stage_entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<uint64_t, StageEntry>> out(stage_entries_.begin(),
                                                     stage_entries_.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
}

void EvalCache::evict_to_capacity_locked() {
    if (capacity_ == 0) return;
    while (entries_.size() > capacity_ && !insertion_order_.empty()) {
        entries_.erase(insertion_order_.front());
        insertion_order_.pop_front();
        evictions_++;
    }
    while (stage_entries_.size() > capacity_ &&
           !stage_insertion_order_.empty()) {
        stage_entries_.erase(stage_insertion_order_.front());
        stage_insertion_order_.pop_front();
        evictions_++;
    }
}

// --- content hashing -----------------------------------------------------------

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void mix(uint64_t& h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

}  // namespace

uint64_t target_fingerprint(const TargetModel& target) {
    // Deliberately name-free: the fingerprint identifies the model's
    // content, so identical models registered under different names share
    // evaluation cache entries and same-name models with different
    // parameters never collide.
    uint64_t h = kFnvOffset;
    for (const int v :
         {target.issue_width, target.alu_slots, target.mul_slots,
          target.mem_slots, target.shift_slots, target.float_slots,
          target.alu_latency, target.mul_latency, target.mem_latency,
          target.shift_latency, target.float_latency,
          target.barrel_shifter ? 1 : 0, target.native_wl,
          target.simd_width_bits, target.pack2_ops, target.extract_ops,
          target.fp.hardware ? 1 : 0, target.fp.add_cycles,
          target.fp.mul_cycles, target.fp.div_cycles}) {
        mix(h, static_cast<uint64_t>(static_cast<int64_t>(v)));
    }
    mix(h, static_cast<uint64_t>(target.loop_overhead_cycles));
    mix(h, target.scalar_wls.size());
    for (const int wl : target.scalar_wls) {
        mix(h, static_cast<uint64_t>(static_cast<int64_t>(wl)));
    }
    mix(h, target.simd_element_wls.size());
    for (const int wl : target.simd_element_wls) {
        mix(h, static_cast<uint64_t>(static_cast<int64_t>(wl)));
    }
    for (const double w : target.op_class_cost) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(w));
        std::memcpy(&bits, &w, sizeof(bits));
        mix(h, bits);
    }
    return h;
}

uint64_t evaluation_key(const KernelContext& context,
                        const TargetModel& target, const FlowResult& result,
                        bool float_variant) {
    uint64_t h = kFnvOffset;
    mix(h, context.fingerprint());
    mix(h, target_fingerprint(target));
    mix(h, float_variant ? 1u : 0u);
    if (float_variant) return h;  // float lowering ignores spec and groups

    const FixedPointSpec& spec = result.spec;
    mix(h, static_cast<uint64_t>(spec.quant_mode()));
    for (const NodeRef node : spec.nodes()) {
        const FixedFormat& f = spec.format(node);
        mix(h, static_cast<uint64_t>(node.kind == NodeRef::Kind::Var ? 0 : 1));
        mix(h, static_cast<uint64_t>(node.id));
        mix(h, static_cast<uint64_t>(static_cast<int64_t>(f.iwl)));
        mix(h, static_cast<uint64_t>(static_cast<int64_t>(f.fwl)));
    }
    mix(h, result.groups.size());
    for (const BlockGroups& bg : result.groups) {
        mix(h, static_cast<uint64_t>(bg.block.value));
        mix(h, bg.groups.size());
        for (const SimdGroup& g : bg.groups) {
            mix(h, g.lanes.size());
            for (const OpId lane : g.lanes) {
                mix(h, static_cast<uint64_t>(lane.value));
            }
        }
    }
    return h;
}

uint64_t stage_memo_key(const KernelContext& context,
                        const TargetModel& target,
                        const std::string& flow_name,
                        const FlowOptions& options) {
    uint64_t h = kFnvOffset;
    mix(h, context.fingerprint());
    mix(h, target_fingerprint(target));
    mix(h, flow_name.size());
    for (const char c : flow_name) {
        mix(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    uint64_t acc_bits;
    std::memcpy(&acc_bits, &options.accuracy_db, sizeof(acc_bits));
    mix(h, acc_bits);
    mix(h, static_cast<uint64_t>(options.quant_mode));

    const auto mix_double = [&h](double v) {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(h, bits);
    };
    const auto mix_slp = [&](const SlpOptions& slp) {
        mix(h, static_cast<uint64_t>(static_cast<int64_t>(slp.max_rounds)));
        mix(h, static_cast<uint64_t>(slp.benefit_mode));
        mix_double(slp.min_benefit);
    };

    // Every optimization tunable; the nested accuracy_db fields are
    // excluded because the passes overwrite them with options.accuracy_db
    // (already mixed above).
    const WloSlpOptions& js = options.wlo_slp;
    mix(h, js.scaling_optim ? 1u : 0u);
    mix(h, js.accuracy_conflicts ? 1u : 0u);
    mix(h, js.strict_feasibility ? 1u : 0u);
    mix_slp(js.slp);

    const WloFirstOptions& wf = options.wlo_first;
    mix(h, static_cast<uint64_t>(
               static_cast<int64_t>(wf.tabu.max_iterations)));
    mix(h, static_cast<uint64_t>(static_cast<int64_t>(wf.tabu.tenure)));
    mix(h, static_cast<uint64_t>(
               static_cast<int64_t>(wf.tabu.stagnation_limit)));
    mix_double(wf.tabu.infeasibility_penalty);
    mix_slp(wf.slp);

    // The solver axis changes outcomes (an exact flow under a different
    // budget can return a different incumbent), so unlike the evaluator
    // axis it is part of the key. The optimizer enum is mixed even though
    // flow resolution already folds it into flow_name, so a directly-run
    // exact flow and one reached through `--optimizer optimal` share
    // entries only when the whole configuration agrees.
    mix(h, static_cast<uint64_t>(options.solver.optimizer));
    mix(h, static_cast<uint64_t>(options.solver.budget.max_nodes));
    mix(h, static_cast<uint64_t>(options.solver.budget.max_millis));
    // options.evaluator and options.measure are deliberately NOT mixed:
    // they pick an execution strategy (and an observational timing), not
    // an outcome, so switching them must keep hitting the same entries.
    return h;
}

// --- concrete passes -----------------------------------------------------------

namespace {

int count_groups(const std::vector<BlockGroups>& groups) {
    int count = 0;
    for (const BlockGroups& bg : groups) {
        count += static_cast<int>(bg.groups.size());
    }
    return count;
}

class RangeAnalysisPass final : public Pass {
public:
    const char* name() const override { return "range-analysis"; }
    void run(PassContext& ctx) const override { ctx.context.ensure_ranges(); }
};

class IwlDeterminationPass final : public Pass {
public:
    const char* name() const override { return "iwl-determination"; }
    void run(PassContext& ctx) const override {
        ctx.result.spec = ctx.context.initial_spec(ctx.options.quant_mode);
    }
};

class SlpAwareWloPass final : public Pass {
public:
    explicit SlpAwareWloPass(bool exact_selection)
        : exact_selection_(exact_selection) {}
    const char* name() const override {
        return exact_selection_ ? "slp-aware-wlo-exact" : "slp-aware-wlo";
    }
    void run(PassContext& ctx) const override {
        WloSlpOptions wlo = ctx.options.wlo_slp;
        wlo.accuracy_db = ctx.options.accuracy_db;
        wlo.exact_selection = exact_selection_;
        wlo.solver_budget = ctx.options.solver.budget;
        ctx.context.ensure_evaluator();
        const WloSlpResult out =
            run_slp_aware_wlo(ctx.context.kernel(), ctx.result.spec,
                              ctx.context.evaluator(), ctx.target, wlo);
        ctx.result.groups = out.block_groups;
        ctx.result.slp_stats = out.slp_stats;
        ctx.result.scaling_stats = out.scaling_stats;
        ctx.result.group_count = count_groups(ctx.result.groups);
        if (exact_selection_) {
            const solver::PackSelectStats& ps = out.solver_stats;
            SolverStats& st = ctx.result.solver_stats;
            st.ran = true;
            st.nodes = ps.nodes;
            st.solves = ps.solves;
            st.proven_optimal = ps.proven_optimal;
            st.heuristic_objective = ps.heuristic_objective;
            st.best_objective = ps.best_objective;
            // Maximization: the exact selection's summed pack benefit is
            // never below the greedy incumbent's.
            st.gap = ps.best_objective - ps.heuristic_objective;
        }
    }

private:
    bool exact_selection_;
};

class WloExactPass final : public Pass {
public:
    const char* name() const override { return "wlo-exact"; }
    void run(PassContext& ctx) const override {
        ctx.context.ensure_evaluator();
        solver::WloExactOptions options;
        options.tabu = ctx.options.wlo_first.tabu;
        options.budget = ctx.options.solver.budget;
        const solver::WloExactResult out = solver::run_wlo_exact(
            ctx.result.spec, ctx.context.evaluator(), ctx.target,
            ctx.options.accuracy_db, options);
        ctx.result.tabu_stats = out.tabu;
        SolverStats& st = ctx.result.solver_stats;
        st.ran = true;
        st.nodes = out.solve.nodes;
        st.solves = 1;
        st.proven_optimal = out.solve.proven_optimal;
        st.heuristic_objective = out.heuristic_cost;
        st.best_objective = out.best_cost;
        // Minimization: the exact cost is never above the Tabu incumbent's.
        st.gap = out.heuristic_cost - out.best_cost;
    }
};

class TabuWloPass final : public Pass {
public:
    const char* name() const override { return "tabu-wlo"; }
    void run(PassContext& ctx) const override {
        ctx.context.ensure_evaluator();
        ctx.result.tabu_stats = run_tabu_wlo(
            ctx.result.spec, ctx.context.evaluator(), ctx.target,
            ctx.options.accuracy_db, ctx.options.wlo_first.tabu);
    }
};

class PlainSlpPass final : public Pass {
public:
    explicit PlainSlpPass(bool retain_views) : retain_views_(retain_views) {}
    const char* name() const override { return "plain-slp"; }
    void run(PassContext& ctx) const override {
        ctx.result.groups = extract_plain_slp_blocks(
            ctx.context.kernel(), ctx.target, ctx.result.spec,
            ctx.options.wlo_first.slp, &ctx.result.slp_stats,
            retain_views_ ? &ctx.packed_views : nullptr);
        ctx.result.group_count = count_groups(ctx.result.groups);
    }

private:
    bool retain_views_;
};

class ScalingOptimPass final : public Pass {
public:
    const char* name() const override { return "scaling-optim"; }
    void run(PassContext& ctx) const override {
        ctx.context.ensure_evaluator();
        for (auto& [block, view] : ctx.packed_views) {
            const auto it = std::find_if(
                ctx.result.groups.begin(), ctx.result.groups.end(),
                [block = block](const BlockGroups& bg) {
                    return bg.block == block;
                });
            if (it == ctx.result.groups.end() || it->groups.empty()) continue;
            ctx.result.scaling_stats += optimize_scalings(
                view, it->groups, ctx.result.spec, ctx.context.evaluator(),
                ctx.options.accuracy_db);
        }
    }
};

class LoweringPass final : public Pass {
public:
    const char* name() const override { return "lowering"; }
    void run(PassContext& ctx) const override {
        ctx.eval_key = evaluation_key(ctx.context, ctx.target, ctx.result,
                                      /*float_variant=*/false);
        if (ctx.cache != nullptr) {
            ctx.cached_eval = ctx.cache->lookup(*ctx.eval_key);
            if (ctx.cached_eval.has_value()) return;  // skip the real work
        }
        ctx.scalar_machine =
            lower_kernel(ctx.context.kernel(), &ctx.result.spec, nullptr,
                         ctx.target, LowerMode::FixedScalar);
        ctx.simd_machine =
            lower_kernel(ctx.context.kernel(), &ctx.result.spec,
                         &ctx.result.groups, ctx.target, LowerMode::FixedSimd);
    }
};

class FloatLoweringPass final : public Pass {
public:
    const char* name() const override { return "float-lowering"; }
    void run(PassContext& ctx) const override {
        ctx.float_variant = true;
        ctx.eval_key = evaluation_key(ctx.context, ctx.target, ctx.result,
                                      /*float_variant=*/true);
        if (ctx.cache != nullptr) {
            ctx.cached_eval = ctx.cache->lookup(*ctx.eval_key);
            if (ctx.cached_eval.has_value()) return;
        }
        ctx.float_machine = lower_kernel(ctx.context.kernel(), nullptr,
                                         nullptr, ctx.target, LowerMode::Float);
    }
};

class CycleEvalPass final : public Pass {
public:
    const char* name() const override { return "cycle-eval"; }
    void run(PassContext& ctx) const override {
        if (ctx.cached_eval.has_value()) {
            ctx.result.scalar_cycles = ctx.cached_eval->scalar_cycles;
            ctx.result.simd_cycles = ctx.cached_eval->simd_cycles;
            ctx.result.analytic_noise_db = ctx.cached_eval->analytic_noise_db;
            return;
        }
        if (ctx.float_variant) {
            SLPWLO_ASSERT(ctx.float_machine.has_value(),
                          "cycle-eval without a lowered float kernel");
            const long long cycles =
                estimate_cycles(*ctx.float_machine, ctx.target).total_cycles;
            ctx.result.scalar_cycles = cycles;
            ctx.result.simd_cycles = cycles;
        } else {
            SLPWLO_ASSERT(ctx.scalar_machine.has_value() &&
                              ctx.simd_machine.has_value(),
                          "cycle-eval without lowered machine kernels");
            ctx.result.scalar_cycles =
                estimate_cycles(*ctx.scalar_machine, ctx.target).total_cycles;
            ctx.result.simd_cycles =
                estimate_cycles(*ctx.simd_machine, ctx.target).total_cycles;
            ctx.context.ensure_evaluator();
            ctx.result.analytic_noise_db =
                ctx.context.evaluator().noise_power_db(ctx.result.spec);
        }
        if (ctx.cache != nullptr && ctx.eval_key.has_value()) {
            ctx.cache->store(*ctx.eval_key,
                             EvalCache::Entry{ctx.result.scalar_cycles,
                                              ctx.result.simd_cycles,
                                              ctx.result.analytic_noise_db});
        }
    }
};

}  // namespace

PassRef make_range_analysis_pass() {
    return std::make_shared<RangeAnalysisPass>();
}
PassRef make_iwl_determination_pass() {
    return std::make_shared<IwlDeterminationPass>();
}
PassRef make_slp_aware_wlo_pass(bool exact_selection) {
    return std::make_shared<SlpAwareWloPass>(exact_selection);
}
PassRef make_tabu_wlo_pass() { return std::make_shared<TabuWloPass>(); }
PassRef make_wlo_exact_pass() { return std::make_shared<WloExactPass>(); }
PassRef make_plain_slp_pass(bool retain_views) {
    return std::make_shared<PlainSlpPass>(retain_views);
}
PassRef make_scaling_optim_pass() {
    return std::make_shared<ScalingOptimPass>();
}
PassRef make_lowering_pass() { return std::make_shared<LoweringPass>(); }
PassRef make_float_lowering_pass() {
    return std::make_shared<FloatLoweringPass>();
}
PassRef make_cycle_eval_pass() { return std::make_shared<CycleEvalPass>(); }

// --- FlowPipeline --------------------------------------------------------------

FlowPipeline::FlowPipeline(std::string name, std::vector<PassRef> passes)
    : name_(std::move(name)), passes_(std::move(passes)) {
    for (const PassRef& pass : passes_) {
        SLPWLO_CHECK(pass != nullptr,
                     "flow `" + name_ + "` contains a null pass");
    }
}

namespace {

/// The passes a stage-memo hit replaces. Everything downstream (lowering,
/// cycle eval) consumes only the restored spec/groups and stays live.
bool is_stage_pass(const char* name) {
    static constexpr const char* kStagePasses[] = {
        "range-analysis", "iwl-determination", "slp-aware-wlo",
        "tabu-wlo",       "plain-slp",         "scaling-optim",
        "wlo-exact",      "slp-aware-wlo-exact"};
    for (const char* stage : kStagePasses) {
        if (std::strcmp(name, stage) == 0) return true;
    }
    return false;
}

}  // namespace

FlowResult FlowPipeline::run(const KernelContext& context,
                             const TargetModel& target,
                             const FlowOptions& options,
                             EvalCache* cache) const {
    SLPWLO_CHECK(!passes_.empty(), "flow `" + name_ + "` has no passes");
    PassContext ctx(context, target, options,
                    FlowResult{.flow_name = name_,
                               .kernel_name = context.kernel().name(),
                               .target_name = target.name,
                               .target_fp = target_fingerprint(target),
                               .accuracy_db = options.accuracy_db,
                               .spec = FixedPointSpec(context.kernel())});
    ctx.cache = cache;

    // Stage memoization: when a cache is attached and this pipeline has
    // optimization stages at all (the float flow does not), a stage-memo
    // hit restores their combined outcome — final formats, groups, stats —
    // and the stage passes are skipped. The restored spec is bit-identical
    // to the cold run's, so the downstream evaluation key (and with it the
    // eval cache and every report byte) cannot tell warm from cold.
    const bool has_stage_passes =
        std::any_of(passes_.begin(), passes_.end(), [](const PassRef& pass) {
            return is_stage_pass(pass->name());
        });
    if (cache != nullptr && has_stage_passes) {
        ctx.stage_key = stage_memo_key(context, target, name_, options);
        if (std::optional<EvalCache::StageEntry> entry =
                cache->lookup_stage(*ctx.stage_key)) {
            FixedPointSpec& spec = ctx.result.spec;
            const std::vector<NodeRef>& nodes = spec.nodes();
            SLPWLO_CHECK(entry->formats.size() == nodes.size(),
                         "stage memo entry does not match kernel `" +
                             context.kernel().name() + "` (node count)");
            spec.set_quant_mode(entry->quant_mode);
            for (size_t i = 0; i < nodes.size(); ++i) {
                spec.set_format(nodes[i], entry->formats[i]);
            }
            ctx.result.groups = std::move(entry->groups);
            ctx.result.slp_stats = entry->slp_stats;
            ctx.result.scaling_stats = entry->scaling_stats;
            ctx.result.tabu_stats = entry->tabu_stats;
            ctx.result.solver_stats = entry->solver_stats;
            ctx.result.group_count = entry->group_count;
            ctx.stage_restored = true;
        }
    }

    for (const PassRef& pass : passes_) {
        if (ctx.stage_restored && is_stage_pass(pass->name())) continue;
        pass->run(ctx);
    }

    if (ctx.stage_key.has_value() && !ctx.stage_restored) {
        EvalCache::StageEntry entry;
        entry.quant_mode = ctx.result.spec.quant_mode();
        entry.formats.reserve(ctx.result.spec.nodes().size());
        for (const NodeRef node : ctx.result.spec.nodes()) {
            entry.formats.push_back(ctx.result.spec.format(node));
        }
        entry.groups = ctx.result.groups;
        entry.slp_stats = ctx.result.slp_stats;
        entry.scaling_stats = ctx.result.scaling_stats;
        entry.tabu_stats = ctx.result.tabu_stats;
        entry.solver_stats = ctx.result.solver_stats;
        entry.group_count = ctx.result.group_count;
        cache->store_stage(*ctx.stage_key, entry);
    }

    // Observational timing + simulation-backed verification of the final
    // spec. Outside the memoized region on purpose: a warm (stage- or
    // eval-cached) run still measures, and a measurement never lands in
    // any cache entry. The noise check runs on the configured `--evaluator`
    // backend — this is where the axis actually executes during a sweep
    // (all three backends are bit-identical, so the bytes cannot differ).
    // The float reference has no fixed-point spec to compile.
    if (ctx.options.measure && !ctx.float_variant) {
        ctx.result.measured_ns =
            exec::measure_kernel_ns(context.kernel(), ctx.result.spec);
        ctx.result.sim_noise_db =
            exec::make_noise_evaluator(context.kernel(), ctx.options.evaluator)
                ->noise_power_db(ctx.result.spec);
    }
    return std::move(ctx.result);
}

// --- FlowRegistry --------------------------------------------------------------

FlowRegistry::FlowRegistry() {
    const PassRef range = make_range_analysis_pass();
    const PassRef iwl = make_iwl_determination_pass();
    const PassRef lower = make_lowering_pass();
    const PassRef cycles = make_cycle_eval_pass();

    flows_.emplace(
        "WLO-SLP",
        FlowPipeline("WLO-SLP", {range, iwl, make_slp_aware_wlo_pass(), lower,
                                 cycles}));
    flows_.emplace(
        "WLO-First",
        FlowPipeline("WLO-First", {range, iwl, make_tabu_wlo_pass(),
                                   make_plain_slp_pass(), lower, cycles}));
    flows_.emplace(
        "WLO-First+Scaling",
        FlowPipeline("WLO-First+Scaling",
                     {range, iwl, make_tabu_wlo_pass(),
                      make_plain_slp_pass(/*retain_views=*/true),
                      make_scaling_optim_pass(), lower, cycles}));
    flows_.emplace("Float", FlowPipeline("Float", {make_float_lowering_pass(),
                                                   cycles}));
    // The exact counterparts (src/solver): branch-and-bound WLO seeded by
    // Tabu, and SLP extraction with exact per-round pack selection. Also
    // reachable from the heuristic flows via `--optimizer optimal` (see
    // optimal_flow_for).
    flows_.emplace(
        "WLO-Optimal",
        FlowPipeline("WLO-Optimal", {range, iwl, make_wlo_exact_pass(),
                                     make_plain_slp_pass(), lower, cycles}));
    flows_.emplace(
        "SLP-Optimal",
        FlowPipeline("SLP-Optimal",
                     {range, iwl,
                      make_slp_aware_wlo_pass(/*exact_selection=*/true),
                      lower, cycles}));
}

FlowRegistry& FlowRegistry::instance() {
    static FlowRegistry registry;
    return registry;
}

void FlowRegistry::add(FlowPipeline pipeline) {
    SLPWLO_CHECK(!pipeline.name().empty(), "flow pipelines need a name");
    std::lock_guard<std::mutex> lock(mutex_);
    flows_[pipeline.name()] = std::move(pipeline);
}

bool FlowRegistry::contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return flows_.count(name) != 0;
}

const FlowPipeline& FlowRegistry::flow(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = flows_.find(name);
    if (it == flows_.end()) {
        std::string known;
        for (const auto& [flow_name, pipeline] : flows_) {
            (void)pipeline;
            if (!known.empty()) known += ", ";
            known += flow_name;
        }
        throw Error("unknown flow `" + name + "`; registered: " + known);
    }
    return it->second;
}

std::vector<std::string> FlowRegistry::names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(flows_.size());
    for (const auto& [flow_name, pipeline] : flows_) {
        (void)pipeline;
        out.push_back(flow_name);
    }
    return out;
}

}  // namespace slpwlo
