#include "flow/work_source.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace slpwlo {

// --- VectorSource --------------------------------------------------------------

VectorSource::VectorSource(std::vector<SweepPoint> points)
    : points_(std::move(points)), rows_(points_.size()) {
    for (size_t i = 0; i < points_.size(); ++i) pending_.push_back(i);
}

Lease VectorSource::acquire(size_t max_slots) {
    Lease lease;
    const size_t take = max_slots == 0
                            ? pending_.size()
                            : std::min(max_slots, pending_.size());
    lease.slots.reserve(take);
    lease.points.reserve(take);
    for (size_t i = 0; i < take; ++i) {
        const size_t slot = pending_.front();
        pending_.pop_front();
        lease.slots.push_back(slot);
        // Moved, not copied: a leased point lives in its lease until the
        // slot is completed (dropped) or abandoned (moved back).
        lease.points.push_back(std::move(points_[slot]));
    }
    // pending_ is kept sorted (abandon reinserts in order), so a lease is
    // not always contiguous — but it is always ascending.
    if (!lease.slots.empty()) lease.id = lease.slots.front();
    return lease;
}

void VectorSource::complete(const Lease& lease, std::vector<WorkRow> rows) {
    SLPWLO_CHECK(rows.size() == lease.slots.size(),
                 "lease completed with a row count that does not match its "
                 "slot count");
    for (size_t i = 0; i < rows.size(); ++i) {
        const size_t slot = lease.slots[i];
        SLPWLO_CHECK(slot < rows_.size(), "lease slot out of range");
        SLPWLO_CHECK(!rows_[slot].has_value(),
                     "slot completed twice in one VectorSource");
        rows_[slot] = std::move(rows[i]);
    }
}

void VectorSource::abandon(const Lease& lease) {
    SLPWLO_CHECK(lease.points.size() == lease.slots.size(),
                 "abandoned lease slots/points size mismatch");
    // Reinsert in sorted position so pending_ — and therefore every
    // future lease — stays ascending even after several outstanding
    // leases are abandoned out of order.
    for (size_t i = 0; i < lease.slots.size(); ++i) {
        const size_t slot = lease.slots[i];
        SLPWLO_CHECK(slot < points_.size(), "abandoned slot out of range");
        points_[slot] = lease.points[i];
        pending_.insert(
            std::lower_bound(pending_.begin(), pending_.end(), slot), slot);
    }
}

std::vector<WorkRow> VectorSource::take_rows() {
    std::vector<WorkRow> rows;
    rows.reserve(rows_.size());
    for (size_t slot = 0; slot < rows_.size(); ++slot) {
        SLPWLO_CHECK(rows_[slot].has_value(),
                     "VectorSource drained with slot " + std::to_string(slot) +
                         " incomplete");
        rows.push_back(std::move(*rows_[slot]));
    }
    rows_.clear();
    return rows;
}

std::vector<SweepResult> VectorSource::take_results() {
    std::vector<WorkRow> rows = take_rows();
    std::vector<SweepResult> results;
    results.reserve(rows.size());
    for (WorkRow& row : rows) results.push_back(std::move(row.result));
    return results;
}

// --- SweepService --------------------------------------------------------------

SweepService::SweepService(ExecOptions options)
    : owned_(std::make_unique<SweepDriver>(std::move(options))),
      driver_(owned_.get()) {}

SweepService::SweepService(SweepDriver& driver) : driver_(&driver) {}

SweepService::~SweepService() = default;

size_t SweepService::drain(WorkSource& source, size_t max_slots) {
    size_t executed = 0;
    for (;;) {
        Lease lease = source.acquire(max_slots);
        if (lease.empty()) break;
        SLPWLO_CHECK(lease.slots.size() == lease.points.size(),
                     "lease slots/points size mismatch");
        std::vector<long long> micros;
        std::vector<SweepResult> results;
        try {
            results = driver_->run_timed(lease.points, &micros);
        } catch (...) {
            source.abandon(lease);
            throw;
        }
        std::vector<WorkRow> rows;
        rows.reserve(results.size());
        for (size_t i = 0; i < results.size(); ++i) {
            rows.push_back(WorkRow{std::move(results[i]), micros[i]});
        }
        executed += rows.size();
        source.complete(lease, std::move(rows));
    }
    return executed;
}

}  // namespace slpwlo
