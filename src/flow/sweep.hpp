// SweepDriver: {kernel x target x flow x accuracy-constraint} grids on a
// work-stealing thread pool, with deterministic result ordering and shared
// memoization.
//
// Every experiment harness in bench/ is a sweep: run some flows on some
// kernels for some targets across an accuracy grid and tabulate. The
// driver centralizes what each bench used to reimplement:
//
//  * per-kernel preparation (range analysis, IWLs, noise-gain calibration)
//    is computed once per kernel and shared across every sweep point that
//    touches it (KernelContext's lazy, call_once-guarded artifacts);
//  * the evaluation stage (lowering + VLIW scheduling + analytic noise) is
//    memoized in an EvalCache keyed by a content hash of the final spec and
//    groups, so sweep points that converge to the same specification — and
//    repeated sweeps over the same grid — pay for it once;
//  * points run concurrently on a work-stealing ThreadPool; results land
//    in pre-assigned slots, so `run(points)[i]` always corresponds to
//    `points[i]` and the output is bit-identical at any thread count.
//
// Points may carry per-point FlowOptions overrides (the ablation benches
// flip flags like scaling_optim per variant) and per-point TargetModel
// overrides (cross-ISA and SIMD-width design-space sweeps; evaluation
// memoization keys the model by content fingerprint, not name).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "flow/pass.hpp"
#include "kernels/kernels.hpp"
#include "target/target_model.hpp"

namespace slpwlo {

class ThreadPool;

/// One point of a sweep grid. `kernel` names a benchmark-registry kernel,
/// `target` a TargetRegistry model (targets::by_name), `flow` a
/// FlowRegistry pipeline. When the effective FlowOptions carry
/// Optimizer::Optimal the flow name resolves through optimal_flow_for at
/// run time — the grid (and its fingerprint) is unchanged; only the
/// pipeline that executes, and the flow name the result reports, differ.
struct SweepPoint {
    std::string kernel;
    std::string target;
    std::string flow = "WLO-SLP";
    double accuracy_db = -40.0;
    /// Per-point option overrides (accuracy_db is still taken from the
    /// point); absent points use the sweep-wide defaults.
    std::optional<FlowOptions> options;
    /// Per-point target override: when present the point runs against
    /// this exact model and `target` is only a label (it is not looked
    /// up). Evaluation memo keys use the model's content fingerprint,
    /// never its name, so same-name points with different models cannot
    /// share cache entries — and a renamed copy of a model still hits.
    std::optional<TargetModel> target_model;
    /// DSL source of a file-based kernel, the kernel-side analogue of
    /// `target_model`: when present the driver registers it (idempotent
    /// by content) before resolving `kernel` through the KernelRegistry,
    /// so a manifest point runs on a worker that never loaded the `.slp`
    /// file. Built-in kernels leave it empty. Populated by
    /// dist::embed_kernel_sources; point fingerprints mix it in, so
    /// same-name kernels with different sources can never alias.
    std::optional<std::string> kernel_source;
};

/// Execution options shared by every sweep entry point — the in-process
/// SweepDriver, the sharded worker (dist::run_shard) and the elastic
/// lease worker (dist::LeaseWorkSource) all consume this one struct, so
/// a thread count or cache bound means the same thing on every path.
struct ExecOptions {
    /// Worker threads; <= 0 picks the hardware concurrency.
    int threads = 0;
    /// Sweep-wide flow options (accuracy_db is overridden per point).
    FlowOptions flow_options;
    /// Share an EvalCache across points and runs of this driver.
    bool memoize = true;
    /// Optional EvalCache entry bound (insertion-order FIFO eviction);
    /// nullopt leaves the cache unlimited.
    std::optional<size_t> cache_capacity;
};

/// Historical name: SweepDriver predates the unified ExecOptions.
using SweepOptions = ExecOptions;

struct SweepResult {
    SweepPoint point;
    FlowResult flow;
};

struct SweepCacheStats {
    size_t eval_hits = 0;
    size_t eval_misses = 0;
    size_t eval_entries = 0;
    /// Stage-memo table counters (warm sweeps skip Tabu/SLP on stage hits).
    size_t stage_hits = 0;
    size_t stage_misses = 0;
    size_t stage_entries = 0;
    size_t contexts = 0;
    /// Process-wide JitCache traffic (exec/jit_cache.hpp): shared objects
    /// reused from / added to the on-disk cache by compiled evaluation and
    /// measurement. Both zero unless the compiled backend ran.
    size_t jit_hits = 0;
    size_t jit_builds = 0;
};

class SweepDriver {
public:
    explicit SweepDriver(SweepOptions options = {});
    ~SweepDriver();

    /// Cartesian grid helper: every kernel x target x flow x constraint.
    static std::vector<SweepPoint> grid(
        const std::vector<std::string>& kernels,
        const std::vector<std::string>& targets,
        const std::vector<std::string>& flows,
        const std::vector<double>& constraints);

    /// Grid with a SIMD-width axis: every kernel x target x width x flow
    /// x constraint, where width 0 keeps the registered base model and a
    /// positive width derives `base.with_simd_width(width)` as the
    /// point's target override. Targets resolve (and derivation errors
    /// surface) while the grid is built; use
    /// TargetModel::can_derive_simd_width to pre-filter incompatible
    /// {target, width} pairs.
    static std::vector<SweepPoint> grid(
        const std::vector<std::string>& kernels,
        const std::vector<std::string>& targets,
        const std::vector<int>& simd_widths,
        const std::vector<std::string>& flows,
        const std::vector<double>& constraints);

    /// Run all points (concurrently) and return results in point order.
    /// Throws if any point failed; the first failure is rethrown. This is
    /// a thin wrapper: the points become a VectorSource drained by a
    /// SweepService (flow/work_source.hpp) — the same execution path the
    /// sharded and elastic sweeps use.
    std::vector<SweepResult> run(const std::vector<SweepPoint>& points);

    /// The execution primitive behind run() and SweepService::drain():
    /// run `points` concurrently, returning results in point order. When
    /// `micros_out` is non-null it receives one measured wall-clock
    /// duration (microseconds) per point, aligned with the results —
    /// measurements are for scheduling, never part of any report bytes.
    std::vector<SweepResult> run_timed(const std::vector<SweepPoint>& points,
                                       std::vector<long long>* micros_out);

    /// Shared per-kernel context (built on first use, then reused —
    /// including across run() calls).
    const KernelContext& context(const std::string& kernel_name);

    /// The shared evaluation cache — the export/import surface for warm
    /// starts and snapshots (dist/cache_snapshot.hpp): preload it before
    /// run() to start warm, export_entries() after to ship results home.
    EvalCache& eval_cache() { return eval_cache_; }
    const EvalCache& eval_cache() const { return eval_cache_; }

    SweepCacheStats cache_stats() const;

    const SweepOptions& options() const { return options_; }

private:
    SweepOptions options_;
    mutable std::mutex contexts_mutex_;
    std::map<std::string, std::unique_ptr<KernelContext>> contexts_;
    EvalCache eval_cache_;
    /// Created on first run(), reused across runs (run() itself is not
    /// re-entrant; callers serialize their own run() calls).
    std::unique_ptr<ThreadPool> pool_;
};

/// The accuracy grid of the paper's figures: `from` down to `to`
/// (inclusive) in steps of `step` dB.
std::vector<double> accuracy_grid(double from = -5.0, double to = -70.0,
                                  double step = 5.0);

/// One sweep result as a single-line JSON object: the FlowResult object
/// (report.hpp's to_json) with the point's option overrides spliced in
/// when present. This is the row format shard result files carry — the
/// distributed merge path reassembles sweep_to_json output byte-for-byte
/// from these rows.
std::string sweep_result_to_json(const SweepResult& result);

/// Serialize sweep results as a JSON array (see report.hpp for the
/// per-result object schema).
std::string sweep_to_json(const std::vector<SweepResult>& results);

/// EvalCache counters as a JSON object:
/// {"hits":..,"misses":..,"entries":..,"stage_hits":..,"stage_misses":..,
///  "stage_entries":..,"contexts":..}.
std::string cache_stats_to_json(const SweepCacheStats& stats);

/// Full sweep report: {"results":[...],"eval_cache":{...}} — the results
/// array plus the evaluation-cache counters, so warm-start effectiveness
/// is visible in machine-readable output.
std::string sweep_to_json(const std::vector<SweepResult>& results,
                          const SweepCacheStats& stats);

}  // namespace slpwlo
