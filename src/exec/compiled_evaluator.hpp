// CompiledEvaluator: the compile-and-execute accuracy backend.
//
// Drop-in sibling of SimulationEvaluator: same constructor contract, same
// pregenerated stimuli and tape-replayed double reference traces (same
// seeds — the traces are bit-identical), but noise_power(spec) runs the
// spec's native CompiledKernel over the whole stimulus batch instead of
// interpreting the tape once per run. The returned noise power is
// bit-identical to SimulationEvaluator's: raw outputs scale exactly to the
// simulator's value-domain outputs and the MSE accumulates in the same
// order (DESIGN.md §12 gives the argument).
//
// Compiled objects are cached per format-set fingerprint (a small MRU —
// optimization loops revisit few distinct specs through this evaluator;
// cross-process reuse is the JitCache's job). When no host compiler is
// usable — or a build fails — the evaluator logs one warning per process
// and degrades to the SimTape replay, so a sweep never fails and its
// report bytes never change.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "accuracy/evaluator.hpp"
#include "accuracy/sim_backend.hpp"
#include "exec/compiled_kernel.hpp"
#include "sim/sim_tape.hpp"

namespace slpwlo::exec {

class CompiledEvaluator final : public AccuracyEvaluator {
public:
    explicit CompiledEvaluator(const Kernel& kernel, int runs = 2,
                               uint64_t seed = 0x5E1F);

    double noise_power(const FixedPointSpec& spec) const override;

    /// True once any noise_power() call had to fall back to the SimTape.
    bool degraded() const { return degraded_; }

private:
    const CompiledKernel* obtain(const FixedPointSpec& spec) const;
    double tape_noise_power(const FixedPointSpec& spec) const;

    const Kernel* kernel_;
    SimTape tape_;
    std::vector<Stimulus> stimuli_;
    std::vector<std::vector<double>> ref_outputs_;
    int runs_;

    /// MRU cache of compiled objects, keyed by format-set fingerprint.
    mutable std::mutex mutex_;
    mutable std::vector<
        std::pair<uint64_t, std::unique_ptr<CompiledKernel>>>
        cache_;
    mutable bool degraded_ = false;
};

/// The `--evaluator` axis factory: a simulation-backed noise evaluator for
/// `backend`, all three bit-identical on the same (kernel, runs, seed).
std::unique_ptr<AccuracyEvaluator> make_noise_evaluator(
    const Kernel& kernel, SimBackend backend, int runs = 2,
    uint64_t seed = 0x5E1F);

}  // namespace slpwlo::exec
