#include "exec/measured_cost.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "exec/compiled_kernel.hpp"
#include "sim/double_sim.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::exec {
namespace {

using Clock = std::chrono::steady_clock;

long long ns_since(Clock::time_point start) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start)
        .count();
}

}  // namespace

long long measure_kernel_ns(const Kernel& kernel, const FixedPointSpec& spec,
                            const MeasureOptions& options) {
    SLPWLO_CHECK(options.reps >= 1 && options.batch >= 1,
                 "measure_kernel_ns needs at least one rep and one stimulus");
    std::string error;
    const std::unique_ptr<CompiledKernel> ck =
        CompiledKernel::create(kernel, spec, &error);
    if (ck == nullptr) return 0;

    const size_t in_elems = ck->input_elems();
    const size_t oc = ck->output_count();
    const size_t batch = static_cast<size_t>(options.batch);
    std::vector<int64_t> in(batch * in_elems);
    std::vector<int64_t> out(batch * oc);
    std::vector<long long> ovf(batch, 0);
    const Stimulus stimulus = make_stimulus(kernel, options.seed);
    ck->pack_stimulus(stimulus, in.data());
    for (size_t s = 1; s < batch; ++s) {
        std::copy(in.begin(),
                  in.begin() + static_cast<long>(in_elems),
                  in.begin() + static_cast<long>(s * in_elems));
    }

    auto run_batch = [&] {
        std::fill(ovf.begin(), ovf.end(), 0);
        ck->run_fixed_batch(in.data(), out.data(), ovf.data(),
                            static_cast<int>(batch));
    };

    for (int i = 0; i < options.warmup; ++i) run_batch();

    long long iters = options.iters;
    if (iters <= 0) {
        // Calibrate once; the pinned count is reused for every repetition
        // so all reps time the same amount of work.
        const Clock::time_point start = Clock::now();
        run_batch();
        const long long once = std::max<long long>(1, ns_since(start));
        iters = std::max<long long>(1, options.calibrate_ns / once);
    }

    std::vector<long long> samples;
    samples.reserve(static_cast<size_t>(options.reps));
    for (int rep = 0; rep < options.reps; ++rep) {
        const Clock::time_point start = Clock::now();
        for (long long i = 0; i < iters; ++i) run_batch();
        const long long elapsed = ns_since(start);
        samples.push_back(
            elapsed / std::max<long long>(
                          1, iters * static_cast<long long>(batch)));
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

}  // namespace slpwlo::exec
