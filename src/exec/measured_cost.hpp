// MeasuredCostModel: wall-clock timing of the compiled kernel body.
//
// Complements the list-scheduler cycle model with a measured number: the
// emitted fixed-point body (the same artifact CompiledEvaluator executes)
// run under a calibrated harness — warmup batches, an iteration count
// pinned once by calibration and reused for every repetition, and the
// median of k repetitions — reported as nanoseconds per kernel execution.
//
// Measured time is observational: it rides in FlowResult::measured_ns and
// result rows next to per-slot micros, and like them it is excluded from
// every identity fingerprint and from default report bytes.
//
// Without a usable host compiler measure_kernel_ns returns 0 (the flow
// leaves measured_ns at 0 and nothing else changes).
#pragma once

#include <cstdint>

#include "fixpoint/spec.hpp"

namespace slpwlo::exec {

struct MeasureOptions {
    int warmup = 2;      ///< un-timed warmup batch invocations
    int reps = 5;        ///< timed repetitions; the median is reported
    int batch = 32;      ///< stimuli per batch invocation
    /// Batch invocations per repetition. 0 calibrates once (targeting
    /// ~calibrate_ns per repetition) and pins the result for all reps.
    long long iters = 0;
    long long calibrate_ns = 2000000;
    uint64_t seed = 0x5E1F;  ///< stimulus stream (matches the evaluators)
};

/// Median wall time of one kernel execution, in nanoseconds; 0 when the
/// compiled backend is unavailable.
long long measure_kernel_ns(const Kernel& kernel, const FixedPointSpec& spec,
                            const MeasureOptions& options = {});

}  // namespace slpwlo::exec
