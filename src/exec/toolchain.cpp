#include "exec/toolchain.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace slpwlo::exec {
namespace {

/// First line of `command`'s stdout, or empty when the command fails.
/// Stderr is discarded; a non-zero exit or no output means "not a compiler".
std::string probe_version(const std::string& command) {
    const std::string line = command + " --version 2>/dev/null";
    FILE* pipe = popen(line.c_str(), "r");
    if (pipe == nullptr) return {};
    char buffer[512];
    std::string banner;
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) banner = buffer;
    const int status = pclose(pipe);
    if (status != 0) return {};
    while (!banner.empty() &&
           (banner.back() == '\n' || banner.back() == '\r')) {
        banner.pop_back();
    }
    return banner;
}

Toolchain probe_host() {
    Toolchain tc;
    // -ffp-contract=off keeps the emitted double reference bodies free of
    // fused multiply-adds, which the bit-identity contract requires.
    tc.flags = "-O2 -fPIC -shared -ffp-contract=off";
    std::vector<std::string> candidates;
    if (const char* env = std::getenv("SLPWLO_CC");
        env != nullptr && env[0] != '\0') {
        // An explicit override is authoritative: if it does not work we
        // report "no toolchain" rather than silently picking another one.
        candidates = {env};
    } else {
        candidates = {"cc", "gcc", "clang"};
    }
    for (const std::string& cc : candidates) {
        const std::string banner = probe_version(cc);
        if (banner.empty()) continue;
        tc.usable = true;
        tc.cc = cc;
        char hex[32];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(
                          hash_name(cc + "|" + banner + "|" + tc.flags)));
        tc.id = cc + "-" + hex;
        break;
    }
    return tc;
}

}  // namespace

const Toolchain& host_toolchain() {
    static const Toolchain toolchain = probe_host();
    return toolchain;
}

bool compile_shared(const Toolchain& toolchain, const std::string& c_path,
                    const std::string& so_path, std::string* log) {
    if (!toolchain.usable) {
        if (log != nullptr) *log = "no usable C compiler";
        return false;
    }
    const std::string log_path = so_path + ".log";
    const std::string command = toolchain.cc + " " + toolchain.flags +
                                " -o '" + so_path + "' '" + c_path + "' > '" +
                                log_path + "' 2>&1";
    const int status = std::system(command.c_str());
    std::string diagnostics;
    if (FILE* f = std::fopen(log_path.c_str(), "r"); f != nullptr) {
        char buffer[1024];
        size_t n = 0;
        while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
            diagnostics.append(buffer, n);
        }
        std::fclose(f);
    }
    std::error_code ec;
    std::filesystem::remove(log_path, ec);
    if (log != nullptr) *log = diagnostics;
    if (status != 0 || !std::filesystem::exists(so_path)) {
        std::filesystem::remove(so_path, ec);
        return false;
    }
    return true;
}

}  // namespace slpwlo::exec
