// JitCache: content-addressed on-disk cache of compiled kernel objects.
//
// A compiled artifact is fully determined by what was emitted and who
// compiled it, so the cache key is the tuple
//   (kernel fingerprint, target fingerprint, format-set fingerprint,
//    quantization mode, compiler id)
// hashed to a filename `<16-hex>.so` (the emitted C rides next to it as
// `<16-hex>.c` for debugging). Sweeps and shard workers across processes
// share the directory: a second worker that needs the same object gets a
// hit instead of a rebuild.
//
// Publishing follows the repo-wide tmp+rename discipline, with the builder
// pid and a process-local sequence number in the temp name so concurrent
// builders never collide — and so temp files orphaned by a SIGKILLed
// worker are identifiable: jit_cleanup_stale() removes `.tmp.` entries
// older than a TTL (the lease coordinator runs it over the farm's jit
// directory alongside its own stale-claim sweep).
//
// The directory resolves to `$SLPWLO_JIT_DIR` if set, else the process
// default installed by set_jit_cache_directory() (the lease WorkSource
// points it at `<lease_dir>/jit`), else `<system temp>/slpwlo-jit`.
#pragma once

#include <cstdint>
#include <string>

#include "fixpoint/quantize.hpp"

namespace slpwlo::exec {

struct JitKey {
    uint64_t kernel_fp = 0;   ///< hash of the printed kernel
    uint64_t target_fp = 0;   ///< 0 for target-independent objects
    uint64_t format_fp = 0;   ///< hash of every node format in the spec
    QuantMode quant_mode = QuantMode::Truncate;
    std::string compiler_id;  ///< Toolchain::id
};

/// The key folded to the filename stem.
uint64_t jit_key_hash(const JitKey& key);

/// Process-wide hit/build counters (sweep cache stats surface them).
struct JitCacheStats {
    long long hits = 0;    ///< object already on disk
    long long builds = 0;  ///< object compiled by this process
};

JitCacheStats jit_cache_stats();
void reset_jit_cache_stats();

/// The active cache directory (created on demand by jit_obtain).
std::string jit_cache_directory();

/// Install the process-default directory (overridden by $SLPWLO_JIT_DIR).
/// Empty string restores the system-temp default.
void set_jit_cache_directory(const std::string& dir);

/// Path to the ready shared object for `key`, compiling `c_source` with the
/// host toolchain when it is not cached yet. Returns an empty string on
/// failure (no toolchain, compile error) with diagnostics in `error`.
std::string jit_obtain(const JitKey& key, const std::string& c_source,
                       std::string* error = nullptr);

/// Remove `.tmp.` droppings older than `age_ms` from `dir` (orphans of
/// SIGKILLed builders). Returns the number of entries removed; a missing
/// directory is not an error (returns 0).
int jit_cleanup_stale(const std::string& dir, long long age_ms);

}  // namespace slpwlo::exec
