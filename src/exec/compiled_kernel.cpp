#include "exec/compiled_kernel.hpp"

#include <dlfcn.h>

#include <cmath>

#include "codegen/c_emitter.hpp"
#include "codegen/fixed_c.hpp"
#include "codegen/ref_c.hpp"
#include "exec/jit_cache.hpp"
#include "exec/toolchain.hpp"
#include "ir/printer.hpp"
#include "sim/sim_tape.hpp"
#include "support/dbmath.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"
#include "support/text.hpp"

namespace slpwlo::exec {
namespace {

/// The stimuli-batched wrappers around the emitted single-run bodies.
std::string emit_batch_wrappers(const Kernel& kernel,
                                const FixedPointSpec& spec,
                                const std::string& fixed_fn,
                                const std::string& ref_fn,
                                size_t input_elems, size_t output_count) {
    CodeWriter w;
    const std::string total = std::to_string(input_elems);
    const std::string oc = std::to_string(output_count);

    // Fixed-point batch: narrow each stimulus' raw slab into the typed
    // input arrays, run with zeroed output arrays (run_fixed's initial
    // memory), trace and counter cursors advanced per stimulus.  Every
    // wrapper-owned identifier carries the slpwlo_ prefix: kernel arrays
    // keep their source names as locals, so a kernel output called `out`
    // must not shadow the batch output pointer.
    w.open("void " + fixed_fn +
           "_batch(const int64_t* slpwlo_bin, int64_t* slpwlo_bout, "
           "long long* slpwlo_bovf, int slpwlo_n)");
    w.open("for (int slpwlo_s = 0; slpwlo_s < slpwlo_n; ++slpwlo_s)");
    w.line("const int64_t* slpwlo_src = slpwlo_bin + (int64_t)slpwlo_s * " +
           total + ";");
    std::vector<std::string> fixed_args;
    std::vector<std::string> ref_args;
    size_t offset = 0;
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        const std::string size = std::to_string(decl.size);
        if (decl.storage == StorageClass::Input) {
            const std::string type = c_int_type(
                spec.array_format(ArrayId(static_cast<int32_t>(a))).wl());
            w.line(type + " " + decl.name + "[" + size + "];");
            w.open("for (int slpwlo_i = 0; slpwlo_i < " + size +
                   "; ++slpwlo_i)");
            w.line(decl.name + "[slpwlo_i] = (" + type + ")slpwlo_src[" +
                   std::to_string(offset) + " + slpwlo_i];");
            w.close();
            fixed_args.push_back(decl.name);
            ref_args.push_back("slpwlo_src + " + std::to_string(offset));
            offset += static_cast<size_t>(decl.size);
        } else if (decl.storage == StorageClass::Output) {
            const std::string type = c_int_type(
                spec.array_format(ArrayId(static_cast<int32_t>(a))).wl());
            w.line(type + " " + decl.name + "[" + size + "] = {0};");
            fixed_args.push_back(decl.name);
            ref_args.push_back(decl.name);  // re-declared in the ref wrapper
        }
    }
    fixed_args.push_back("slpwlo_bout + (int64_t)slpwlo_s * " + oc);
    fixed_args.push_back("slpwlo_bovf + slpwlo_s");
    w.line(fixed_fn + "(" + join(fixed_args, ", ") + ");");
    w.close();
    w.close();
    w.blank();

    // Double reference batch: input slabs are passed through unquantized.
    w.open("void " + ref_fn +
           "_batch(const double* slpwlo_bin, double* slpwlo_bout, "
           "int slpwlo_n)");
    w.open("for (int slpwlo_s = 0; slpwlo_s < slpwlo_n; ++slpwlo_s)");
    w.line("const double* slpwlo_src = slpwlo_bin + (int64_t)slpwlo_s * " +
           total + ";");
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        if (decl.storage != StorageClass::Output) continue;
        w.line("double " + decl.name + "[" + std::to_string(decl.size) +
               "] = {0};");
    }
    ref_args.push_back("slpwlo_bout + (int64_t)slpwlo_s * " + oc);
    w.line(ref_fn + "(" + join(ref_args, ", ") + ");");
    w.close();
    w.close();
    return w.str();
}

}  // namespace

uint64_t spec_format_fingerprint(const FixedPointSpec& spec) {
    // FNV-1a over (node kind, node id, iwl, fwl) of every node + the mode.
    uint64_t h = hash_name("slpwlo-format-set-v1");
    auto mix = [&h](long long value) {
        for (int i = 0; i < 8; ++i) {
            h ^= (static_cast<uint64_t>(value) >> (i * 8)) & 0xFF;
            h *= 1099511628211ULL;
        }
    };
    for (const NodeRef node : spec.nodes()) {
        const FixedFormat& fmt = spec.format(node);
        mix(static_cast<long long>(node.kind));
        mix(node.id);
        mix(fmt.iwl);
        mix(fmt.fwl);
    }
    mix(static_cast<long long>(spec.quant_mode()));
    return h;
}

std::unique_ptr<CompiledKernel> CompiledKernel::create(
    const Kernel& kernel, const FixedPointSpec& spec, std::string* error) {
    // Degenerate formats (wl outside [1, 63] — e.g. a spec straight out
    // of range analysis, before WLO assigns word lengths) cannot be
    // represented in the generated C's raw integer domain; refuse before
    // touching the toolchain so the evaluator degrades to the tape, whose
    // double-domain clamping handles them bit-identically to the walker.
    std::string why;
    if (!spec_fits_c_domain(spec, &why)) {
        if (error != nullptr) *error = why;
        return nullptr;
    }
    const Toolchain& toolchain = host_toolchain();
    if (!toolchain.usable) {
        if (error != nullptr) *error = "no usable C compiler";
        return nullptr;
    }

    FixedCOptions options;
    options.count_overflows = true;
    options.record_trace = true;
    const FixedCResult fixed = emit_fixed_c(kernel, spec, options);
    const RefCResult ref = emit_ref_c(kernel);

    std::unique_ptr<CompiledKernel> ck(new CompiledKernel());
    ck->quant_mode_ = spec.quant_mode();
    size_t offset = 0;
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        const ArrayId id(static_cast<int32_t>(a));
        if (decl.storage == StorageClass::Input) {
            InputSlot slot;
            slot.array = id.value;
            slot.offset = offset;
            slot.size = static_cast<size_t>(decl.size);
            slot.format = spec.array_format(id);
            ck->inputs_.push_back(slot);
            offset += slot.size;
        } else if (decl.storage == StorageClass::Param) {
            // run_fixed quantizes Param contents on every replay, counting
            // saturation each time; the compiled body bakes the saturated
            // raw data in, so the count is replicated host-side per replay.
            const FixedFormat fmt = spec.array_format(id);
            for (const double v : decl.values) {
                bool overflowed = false;
                quantize_saturate(v, fmt, spec.quant_mode(), &overflowed);
                if (overflowed) ck->param_overflows_++;
            }
        }
    }
    ck->input_elems_ = offset;

    // One tape walk resolves each Output store's array format into the
    // raw->value scale of its trace slot.
    const SimTape tape(kernel);
    ck->output_steps_.reserve(tape.output_count());
    for (const TapeStep& step : tape.steps()) {
        if (step.kind != OpKind::Store || !step.output) continue;
        ck->output_steps_.push_back(
            pow2(-spec.array_format(ArrayId(step.array)).fwl));
    }

    const std::string code =
        fixed.code + "\n" + ref.code + "\n" +
        emit_batch_wrappers(kernel, spec, fixed.function_name,
                            ref.function_name, ck->input_elems_,
                            ck->output_steps_.size());

    JitKey key;
    key.kernel_fp = hash_name(print_kernel(kernel));
    key.format_fp = spec_format_fingerprint(spec);
    key.quant_mode = spec.quant_mode();
    key.compiler_id = toolchain.id;
    const std::string so_path = jit_obtain(key, code, error);
    if (so_path.empty()) return nullptr;

    ck->handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (ck->handle_ == nullptr) {
        if (error != nullptr) {
            const char* why = dlerror();
            *error = why != nullptr ? why : "dlopen failed";
        }
        return nullptr;
    }
    ck->so_path_ = so_path;
    const std::string fixed_sym = fixed.function_name + "_batch";
    const std::string ref_sym = ref.function_name + "_batch";
    ck->fixed_batch_ = reinterpret_cast<decltype(ck->fixed_batch_)>(
        dlsym(ck->handle_, fixed_sym.c_str()));
    ck->ref_batch_ = reinterpret_cast<decltype(ck->ref_batch_)>(
        dlsym(ck->handle_, ref_sym.c_str()));
    if (ck->fixed_batch_ == nullptr || ck->ref_batch_ == nullptr) {
        if (error != nullptr) {
            *error = "compiled object misses " + fixed_sym + "/" + ref_sym;
        }
        return nullptr;
    }
    return ck;
}

CompiledKernel::~CompiledKernel() {
    if (handle_ != nullptr) dlclose(handle_);
}

long long CompiledKernel::pack_stimulus(const Stimulus& stimulus,
                                        int64_t* slab) const {
    long long overflows = 0;
    for (const InputSlot& slot : inputs_) {
        SLPWLO_CHECK(static_cast<size_t>(slot.array) < stimulus.size() &&
                         stimulus[static_cast<size_t>(slot.array)].size() ==
                             slot.size,
                     "stimulus missing or mis-sized for a compiled kernel "
                     "input array");
        const std::vector<double>& values =
            stimulus[static_cast<size_t>(slot.array)];
        const double scale = pow2(slot.format.fwl);
        for (size_t i = 0; i < slot.size; ++i) {
            bool overflowed = false;
            const double q = quantize_saturate(values[i], slot.format,
                                               quant_mode_, &overflowed);
            if (overflowed) overflows++;
            slab[slot.offset + i] = std::llround(q * scale);
        }
    }
    return overflows;
}

void CompiledKernel::pack_stimulus_ref(const Stimulus& stimulus,
                                       double* slab) const {
    for (const InputSlot& slot : inputs_) {
        SLPWLO_CHECK(static_cast<size_t>(slot.array) < stimulus.size() &&
                         stimulus[static_cast<size_t>(slot.array)].size() ==
                             slot.size,
                     "stimulus missing or mis-sized for a compiled kernel "
                     "input array");
        const std::vector<double>& values =
            stimulus[static_cast<size_t>(slot.array)];
        for (size_t i = 0; i < slot.size; ++i) slab[slot.offset + i] = values[i];
    }
}

void CompiledKernel::run_fixed_batch(const int64_t* in, int64_t* out,
                                     long long* ovf, int n) const {
    fixed_batch_(in, out, ovf, n);
}

void CompiledKernel::run_ref_batch(const double* in, double* out,
                                   int n) const {
    ref_batch_(in, out, n);
}

}  // namespace slpwlo::exec
