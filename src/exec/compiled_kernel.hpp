// CompiledKernel: a kernel + fixed-point spec compiled to native code.
//
// The translation unit batches three pieces (see DESIGN.md §12):
//   * the instrumented fixed-point body (codegen/fixed_c with overflow
//     counting and output-trace recording) and a stimuli-batched wrapper
//       void <kernel>_fixed_batch(const int64_t* in, int64_t* out,
//                                 long long* ovf, int n);
//     `in` is n stimuli of raw input integers (input arrays concatenated in
//     declaration order), `out` receives n output traces of raw integers in
//     execution order, `ovf[s]` accumulates stimulus s's dynamic saturation
//     events (the caller seeds it with the host-side input/param
//     quantization counts);
//   * the double reference body (codegen/ref_c) and its batched wrapper
//       void <kernel>_ref_batch(const double* in, double* out, int n);
//
// Objects are compiled through the on-disk JitCache and dlopen'ed; the
// handle is closed on destruction. Identity contract: for every stimulus,
// raw outputs scaled by output_step() and the seeded overflow counter are
// bit-identical to SimTape::run_fixed's outputs/overflow_count, and the
// reference trace is bit-identical to run_double's (enforced by
// tests/test_compiled_exec.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fixpoint/spec.hpp"
#include "sim/double_sim.hpp"

namespace slpwlo::exec {

/// Fingerprint of every node format in the spec (+ quant mode): the
/// format-set component of the JitCache key.
uint64_t spec_format_fingerprint(const FixedPointSpec& spec);

class CompiledKernel {
public:
    /// Emit, compile (through the JitCache) and load. Returns nullptr with
    /// a diagnostic in `error` when no toolchain is usable or the object
    /// cannot be built/loaded — callers degrade to the SimTape.
    static std::unique_ptr<CompiledKernel> create(const Kernel& kernel,
                                                  const FixedPointSpec& spec,
                                                  std::string* error);

    ~CompiledKernel();
    CompiledKernel(const CompiledKernel&) = delete;
    CompiledKernel& operator=(const CompiledKernel&) = delete;

    /// Raw input elements per stimulus (input arrays concatenated).
    size_t input_elems() const { return input_elems_; }
    /// Output-trace entries per stimulus.
    size_t output_count() const { return output_steps_.size(); }

    /// Quantize `stimulus` into `slab` (input_elems() raw integers);
    /// returns the number of input-quantization saturation events — the
    /// host-side half of run_fixed's initial-memory pass.
    long long pack_stimulus(const Stimulus& stimulus, int64_t* slab) const;

    /// Pack `stimulus` as doubles for the reference batch (no quantization).
    void pack_stimulus_ref(const Stimulus& stimulus, double* slab) const;

    /// Param-array quantization saturation events, incurred once per replay.
    long long param_overflow_count() const { return param_overflows_; }

    /// n stimuli through the fixed-point body. `out` holds n*output_count()
    /// raw integers; `ovf` n counters the callee increments in place.
    void run_fixed_batch(const int64_t* in, int64_t* out, long long* ovf,
                         int n) const;

    /// n stimuli through the double reference body.
    void run_ref_batch(const double* in, double* out, int n) const;

    /// 2^-fwl of the Output array behind trace slot `i`: raw * step = value.
    double output_step(size_t i) const { return output_steps_[i]; }
    const std::vector<double>& output_steps() const { return output_steps_; }

    const std::string& so_path() const { return so_path_; }

private:
    CompiledKernel() = default;

    struct InputSlot {
        int32_t array = 0;  ///< ArrayId index into the stimulus
        size_t offset = 0;  ///< element offset in the slab
        size_t size = 0;
        FixedFormat format;
    };

    void* handle_ = nullptr;
    void (*fixed_batch_)(const int64_t*, int64_t*, long long*, int) = nullptr;
    void (*ref_batch_)(const double*, double*, int) = nullptr;
    std::vector<InputSlot> inputs_;
    size_t input_elems_ = 0;
    std::vector<double> output_steps_;
    long long param_overflows_ = 0;
    QuantMode quant_mode_ = QuantMode::Truncate;
    std::string so_path_;
};

}  // namespace slpwlo::exec
