// Host toolchain probe for the compile-and-execute backend.
//
// The backend shells out to a C compiler to turn emitted kernels into
// shared objects. The compiler is discovered once per process (and the
// result cached): `$SLPWLO_CC` if set, otherwise the first of `cc`, `gcc`,
// `clang` that answers `--version`. The probe's version banner is folded
// into `id`, which participates in the JitCache key so objects built by a
// different compiler are never reused.
//
// A missing compiler is not an error at this layer: `usable` is false and
// every caller is expected to degrade (CompiledEvaluator falls back to the
// SimTape, MeasuredCostModel reports 0). A `clang -target` cross hook can
// slot in later by constructing a Toolchain by hand.
#pragma once

#include <string>

namespace slpwlo::exec {

struct Toolchain {
    bool usable = false;
    std::string cc;     ///< compiler command ("cc", "/usr/bin/clang", ...)
    std::string id;     ///< cache identity: command + version banner hash
    std::string flags;  ///< compile flags (position-independent shared object)
};

/// The probed host toolchain; the probe runs once and is cached for the
/// process. Thread-safe.
const Toolchain& host_toolchain();

/// Compile `c_path` into the shared object `so_path`. Returns false (and
/// fills `log` with the compiler's diagnostics) on failure.
bool compile_shared(const Toolchain& toolchain, const std::string& c_path,
                    const std::string& so_path, std::string* log = nullptr);

}  // namespace slpwlo::exec
