#include "exec/compiled_evaluator.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>

#include "accuracy/sim_evaluator.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::exec {
namespace {

constexpr size_t kCompiledCacheCapacity = 8;

void warn_degraded_once(const std::string& why) {
    static std::atomic<bool> warned{false};
    if (warned.exchange(true)) return;
    std::fprintf(stderr,
                 "slpwlo: compiled evaluator unavailable (%s); "
                 "falling back to the SimTape backend\n",
                 why.c_str());
}

}  // namespace

CompiledEvaluator::CompiledEvaluator(const Kernel& kernel, int runs,
                                     uint64_t seed)
    : kernel_(&kernel), tape_(kernel), runs_(runs) {
    SLPWLO_CHECK(runs >= 1, "CompiledEvaluator requires at least one run");
    stimuli_.reserve(static_cast<size_t>(runs));
    ref_outputs_.reserve(static_cast<size_t>(runs));
    for (int run = 0; run < runs; ++run) {
        stimuli_.push_back(
            make_stimulus(kernel, seed + static_cast<uint64_t>(run)));
        ref_outputs_.push_back(run_double(tape_, stimuli_.back()).outputs);
    }
}

const CompiledKernel* CompiledEvaluator::obtain(
    const FixedPointSpec& spec) const {
    const uint64_t fp = spec_format_fingerprint(spec);
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < cache_.size(); ++i) {
        if (cache_[i].first != fp) continue;
        if (i != 0) {
            std::rotate(cache_.begin(), cache_.begin() + i,
                        cache_.begin() + i + 1);
        }
        return cache_.front().second.get();
    }
    std::string error;
    std::unique_ptr<CompiledKernel> ck =
        CompiledKernel::create(*kernel_, spec, &error);
    if (ck == nullptr) {
        warn_degraded_once(error);
        degraded_ = true;
        return nullptr;
    }
    cache_.insert(cache_.begin(), {fp, std::move(ck)});
    if (cache_.size() > kCompiledCacheCapacity) cache_.pop_back();
    return cache_.front().second.get();
}

double CompiledEvaluator::tape_noise_power(const FixedPointSpec& spec) const {
    double total = 0.0;
    for (int run = 0; run < runs_; ++run) {
        total += measure_noise_power(tape_, spec,
                                     stimuli_[static_cast<size_t>(run)],
                                     ref_outputs_[static_cast<size_t>(run)]);
    }
    return total / runs_;
}

double CompiledEvaluator::noise_power(const FixedPointSpec& spec) const {
    SLPWLO_ASSERT(&spec.kernel() == kernel_,
                  "spec belongs to a different kernel");
    const CompiledKernel* ck = obtain(spec);
    if (ck == nullptr) return tape_noise_power(spec);

    const size_t in_elems = ck->input_elems();
    const size_t oc = ck->output_count();
    const size_t n = static_cast<size_t>(runs_);
    std::vector<int64_t> in(n * in_elems);
    std::vector<int64_t> out(n * oc);
    std::vector<long long> ovf(n, 0);
    for (size_t run = 0; run < n; ++run) {
        ovf[run] = ck->param_overflow_count() +
                   ck->pack_stimulus(stimuli_[run], in.data() +
                                                        run * in_elems);
    }
    ck->run_fixed_batch(in.data(), out.data(), ovf.data(),
                        static_cast<int>(n));

    // Identical accumulation order to measure_noise_power over the runs.
    const std::vector<double>& steps = ck->output_steps();
    double total = 0.0;
    for (size_t run = 0; run < n; ++run) {
        const std::vector<double>& ref = ref_outputs_[run];
        SLPWLO_ASSERT(ref.size() == oc,
                      "reference and compiled traces differ in length");
        if (oc == 0) continue;
        const int64_t* raw = out.data() + run * oc;
        double sum = 0.0;
        for (size_t i = 0; i < oc; ++i) {
            const double e =
                static_cast<double>(raw[i]) * steps[i] - ref[i];
            sum += e * e;
        }
        total += sum / static_cast<double>(oc);
    }
    return total / runs_;
}

std::unique_ptr<AccuracyEvaluator> make_noise_evaluator(const Kernel& kernel,
                                                        SimBackend backend,
                                                        int runs,
                                                        uint64_t seed) {
    switch (backend) {
        case SimBackend::Walker:
            return std::make_unique<WalkerEvaluator>(kernel, runs, seed);
        case SimBackend::Compiled:
            return std::make_unique<CompiledEvaluator>(kernel, runs, seed);
        case SimBackend::Tape:
            break;
    }
    return std::make_unique<SimulationEvaluator>(kernel, runs, seed);
}

}  // namespace slpwlo::exec
