#include "exec/jit_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "exec/toolchain.hpp"
#include "support/rng.hpp"

namespace slpwlo::exec {
namespace fs = std::filesystem;

namespace {

std::atomic<long long> g_hits{0};
std::atomic<long long> g_builds{0};
std::atomic<uint64_t> g_tmp_seq{0};
std::mutex g_mutex;
std::string g_default_dir;  // guarded by g_mutex

uint64_t mix(uint64_t h, uint64_t value) {
    // FNV-1a over the value's bytes, matching the dist-layer fingerprints.
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (i * 8)) & 0xFF;
        h *= 1099511628211ULL;
    }
    return h;
}

/// Write `text` to `path` via a pid-unique temp name + rename, so readers
/// never observe a partial file and orphaned temps are attributable.
bool publish_file(const fs::path& path, const std::string& text) {
    const fs::path tmp = fs::path(
        path.string() + ".tmp." + std::to_string(getpid()) + "." +
        std::to_string(g_tmp_seq.fetch_add(1)));
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out) return false;
        out << text;
        if (!out.flush()) return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) fs::remove(tmp, ec);
    return !ec;
}

}  // namespace

uint64_t jit_key_hash(const JitKey& key) {
    // The version tag doubles as the emitter generation: bumping it
    // orphans every cached object built by older emitters (the key hashes
    // kernel + formats, not the generated source, so a codegen fix would
    // otherwise keep hitting stale .so files).
    uint64_t h = hash_name("slpwlo-jit-v2");
    h = mix(h, key.kernel_fp);
    h = mix(h, key.target_fp);
    h = mix(h, key.format_fp);
    h = mix(h, static_cast<uint64_t>(key.quant_mode));
    h = mix(h, hash_name(key.compiler_id));
    return h;
}

JitCacheStats jit_cache_stats() {
    JitCacheStats stats;
    stats.hits = g_hits.load();
    stats.builds = g_builds.load();
    return stats;
}

void reset_jit_cache_stats() {
    g_hits.store(0);
    g_builds.store(0);
}

std::string jit_cache_directory() {
    if (const char* env = std::getenv("SLPWLO_JIT_DIR");
        env != nullptr && env[0] != '\0') {
        return env;
    }
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_default_dir.empty()) return g_default_dir;
    return (fs::temp_directory_path() / "slpwlo-jit").string();
}

void set_jit_cache_directory(const std::string& dir) {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_default_dir = dir;
}

std::string jit_obtain(const JitKey& key, const std::string& c_source,
                       std::string* error) {
    const fs::path dir = jit_cache_directory();
    char stem[32];
    std::snprintf(stem, sizeof(stem), "%016llx",
                  static_cast<unsigned long long>(jit_key_hash(key)));
    const fs::path so_path = dir / (std::string(stem) + ".so");

    std::error_code ec;
    if (fs::exists(so_path, ec)) {
        g_hits.fetch_add(1);
        return so_path.string();
    }

    // One builder per process; cross-process racers publish independently
    // (both temps rename onto the same content-addressed name).
    std::lock_guard<std::mutex> lock(g_mutex);
    if (fs::exists(so_path, ec)) {
        g_hits.fetch_add(1);
        return so_path.string();
    }
    fs::create_directories(dir, ec);
    if (ec) {
        if (error != nullptr) {
            *error = "cannot create jit cache directory " + dir.string() +
                     ": " + ec.message();
        }
        return {};
    }

    const std::string unique = std::to_string(getpid()) + "." +
                               std::to_string(g_tmp_seq.fetch_add(1));
    const fs::path tmp_c = dir / (std::string(stem) + ".so.tmp." + unique +
                                  ".c");
    const fs::path tmp_so = dir / (std::string(stem) + ".so.tmp." + unique);
    {
        std::ofstream out(tmp_c, std::ios::binary);
        out << c_source;
        if (!out.flush()) {
            if (error != nullptr) {
                *error = "cannot write " + tmp_c.string();
            }
            fs::remove(tmp_c, ec);
            return {};
        }
    }
    std::string log;
    const bool ok =
        compile_shared(host_toolchain(), tmp_c.string(), tmp_so.string(),
                       &log);
    if (!ok) {
        if (error != nullptr) *error = log.empty() ? "compile failed" : log;
        fs::remove(tmp_c, ec);
        fs::remove(tmp_so, ec);
        return {};
    }
    fs::rename(tmp_so, so_path, ec);
    if (ec) {
        if (error != nullptr) {
            *error = "cannot publish " + so_path.string() + ": " +
                     ec.message();
        }
        fs::remove(tmp_c, ec);
        fs::remove(tmp_so, ec);
        return {};
    }
    // The emitted source rides next to the object for debugging.
    publish_file(dir / (std::string(stem) + ".c"), c_source);
    fs::remove(tmp_c, ec);
    g_builds.fetch_add(1);
    return so_path.string();
}

int jit_cleanup_stale(const std::string& dir, long long age_ms) {
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) return 0;
    const auto now = fs::file_time_type::clock::now();
    const auto age = std::chrono::milliseconds(age_ms);
    int removed = 0;
    for (const auto& entry : it) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") == std::string::npos) continue;
        const auto mtime = fs::last_write_time(entry.path(), ec);
        if (ec) continue;
        if (now - mtime < age) continue;
        if (fs::remove(entry.path(), ec) && !ec) removed++;
    }
    return removed;
}

}  // namespace slpwlo::exec
