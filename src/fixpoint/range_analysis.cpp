#include "fixpoint/range_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "sim/double_sim.hpp"
#include "support/diagnostics.hpp"

#include "sim/walker.hpp"

namespace slpwlo {
namespace {

bool ranges_bounded(const std::vector<Interval>& vars,
                    const std::vector<Interval>& arrays) {
    auto finite = [](const Interval& iv) {
        return iv.is_empty() ||
               (std::isfinite(iv.lo()) && std::isfinite(iv.hi()));
    };
    return std::all_of(vars.begin(), vars.end(), finite) &&
           std::all_of(arrays.begin(), arrays.end(), finite);
}

/// Interval propagation as flow-sensitive abstract execution: the kernel is
/// "run" once with Interval values following the real control flow and a
/// per-element interval memory image. Because the loop nest has no
/// data-dependent control flow, this single abstract pass mirrors the
/// concrete execution exactly — only the input values are abstracted — so a
/// reset accumulator gets its exact bounded hull and coefficient loads their
/// exact point values. Interval dependency pessimism still makes genuinely
/// recursive kernels (IIR feedback) blow up; that shows up as unbounded (or
/// absurdly large) hulls and is reported as divergence so the caller can
/// fall back to simulation.
std::optional<RangeMap> try_interval(const Kernel& kernel,
                                     const RangeOptions& options) {
    (void)options;
    RangeMap map;
    map.var_ranges.assign(kernel.vars().size(), Interval::empty());
    std::vector<Interval>& var_hulls = map.var_ranges;
    std::vector<Interval>& array_hulls = map.array_ranges;
    array_hulls.assign(kernel.arrays().size(), Interval::empty());

    // Per-element abstract memory.
    std::vector<std::vector<Interval>> mem(kernel.arrays().size());
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        switch (decl.storage) {
            case StorageClass::Input:
                mem[a].assign(static_cast<size_t>(decl.size),
                              decl.declared_range);
                break;
            case StorageClass::Param:
                mem[a].reserve(static_cast<size_t>(decl.size));
                for (const double v : decl.values) {
                    mem[a].emplace_back(v);
                }
                break;
            case StorageClass::Output:
            case StorageClass::Buffer:
                mem[a].assign(static_cast<size_t>(decl.size), Interval(0.0));
                break;
        }
        // Initial contents participate in the storage-format hull
        // (feedback reads of the zero initial state, untouched elements).
        for (const Interval& iv : mem[a]) {
            array_hulls[a] = array_hulls[a].hull(iv);
        }
    }

    std::vector<Interval> var_now(kernel.vars().size(), Interval::empty());
    walk_kernel(kernel, [&](OpId op_id, const std::vector<int>& loop_values) {
        const Op& op = kernel.op(op_id);
        auto arg = [&](int i) -> const Interval& {
            return var_now[op.args[i].index()];
        };
        Interval value;
        switch (op.kind) {
            case OpKind::Const: value = Interval(op.const_value); break;
            case OpKind::Copy: value = arg(0); break;
            case OpKind::Neg: value = -arg(0); break;
            case OpKind::Add: value = arg(0) + arg(1); break;
            case OpKind::Sub: value = arg(0) - arg(1); break;
            case OpKind::Mul: value = arg(0) * arg(1); break;
            case OpKind::Div: value = arg(0) / arg(1); break;
            case OpKind::Load: {
                const int idx = evaluate_affine(op.index, loop_values);
                value = mem[op.array.index()][static_cast<size_t>(idx)];
                break;
            }
            case OpKind::Store: {
                const int idx = evaluate_affine(op.index, loop_values);
                mem[op.array.index()][static_cast<size_t>(idx)] = arg(0);
                array_hulls[op.array.index()] =
                    array_hulls[op.array.index()].hull(arg(0));
                return;
            }
        }
        var_now[op.dest.index()] = value;
        var_hulls[op.dest.index()] = var_hulls[op.dest.index()].hull(value);
    });

    if (!ranges_bounded(var_hulls, array_hulls)) {
        return std::nullopt;  // diverged to infinity
    }
    // Finite but astronomically wide hulls are as useless as divergence.
    for (const Interval& iv : array_hulls) {
        if (iv.max_abs() > 1e15) return std::nullopt;
    }
    for (const Interval& iv : var_hulls) {
        if (iv.max_abs() > 1e15) return std::nullopt;
    }
    map.method_used = RangeMethod::Interval;
    return map;
}

RangeMap simulate(const Kernel& kernel, const RangeOptions& options) {
    RangeMap map;
    map.var_ranges.assign(kernel.vars().size(), Interval::empty());
    map.array_ranges.assign(kernel.arrays().size(), Interval::empty());
    map.method_used = RangeMethod::Simulation;

    DoubleSimOptions sim_options;
    sim_options.record_ranges = true;
    for (int run = 0; run < options.simulation_runs; ++run) {
        const Stimulus stimulus =
            make_stimulus(kernel, options.seed + static_cast<uint64_t>(run));
        const DoubleSimResult result =
            run_double(kernel, stimulus, sim_options);
        for (size_t v = 0; v < map.var_ranges.size(); ++v) {
            map.var_ranges[v] = map.var_ranges[v].hull(result.var_ranges[v]);
        }
        for (size_t a = 0; a < map.array_ranges.size(); ++a) {
            map.array_ranges[a] =
                map.array_ranges[a].hull(result.array_ranges[a]);
        }
    }

    // Widen simulated hulls as a safety margin, but keep declared input
    // ranges and exact coefficient hulls tight.
    for (size_t v = 0; v < map.var_ranges.size(); ++v) {
        map.var_ranges[v] = map.var_ranges[v].widened(options.simulation_margin);
    }
    for (size_t a = 0; a < map.array_ranges.size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        if (decl.storage == StorageClass::Input) {
            map.array_ranges[a] = decl.declared_range;
        } else if (decl.storage != StorageClass::Param) {
            map.array_ranges[a] =
                map.array_ranges[a].widened(options.simulation_margin);
        }
    }
    return map;
}

}  // namespace

RangeMap analyze_ranges(const Kernel& kernel, const RangeOptions& options) {
    switch (options.method) {
        case RangeMethod::Interval: {
            auto result = try_interval(kernel, options);
            SLPWLO_CHECK(result.has_value(),
                         "interval range analysis diverged for kernel `" +
                             kernel.name() +
                             "`; use RangeMethod::Simulation or Auto");
            return std::move(*result);
        }
        case RangeMethod::Simulation:
            return simulate(kernel, options);
        case RangeMethod::Auto: {
            auto result = try_interval(kernel, options);
            if (result.has_value()) return std::move(*result);
            return simulate(kernel, options);
        }
    }
    throw InternalError("unreachable range method");
}

}  // namespace slpwlo
