// Fixed-point formats.
//
// A format <IWL, FWL> describes a signed two's-complement value with
// WL = IWL + FWL total bits, where IWL (integer word length, sign bit
// included) fixes the binary point and FWL (fractional word length) the
// resolution: representable values are k * 2^-FWL for
// k in [-2^(WL-1), 2^(WL-1) - 1], i.e. the range
// [-2^(IWL-1), 2^(IWL-1) - 2^-FWL].
//
// Following the paper (Section II.B): IWL is pre-determined from the value
// range; WLO assigns WL; FWL = WL - IWL is implicit. FWL may be negative
// (coarser-than-integer resolution) when WLO starves a wide-range node.
#pragma once

#include <string>

#include "support/interval.hpp"

namespace slpwlo {

struct FixedFormat {
    int iwl = 0;  ///< integer word length, sign bit included
    int fwl = 0;  ///< fractional word length

    constexpr FixedFormat() = default;
    constexpr FixedFormat(int iwl_, int fwl_) : iwl(iwl_), fwl(fwl_) {}

    constexpr int wl() const { return iwl + fwl; }

    /// Quantization step 2^-fwl.
    double step() const;

    /// Smallest / largest representable value.
    double min_value() const;
    double max_value() const;

    /// Representable closed interval.
    Interval range() const;

    /// Same wl, binary point moved: fwl reduced by `amount` and iwl grown by
    /// the same amount (the scaling-optimization move of Fig. 1b).
    FixedFormat with_fwl_reduced_by(int amount) const;

    /// Format with the same iwl but total word length `wl`.
    FixedFormat with_wl(int wl_total) const;

    friend constexpr bool operator==(FixedFormat, FixedFormat) = default;

    std::string str() const;
};

/// Minimum IWL (sign included) whose range covers `range`. A high bound that
/// is exactly a power of two (e.g. +1.0 for Q1.f) is accepted with saturating
/// semantics, the standard Q-format convention.
int iwl_for_range(const Interval& range);

}  // namespace slpwlo
