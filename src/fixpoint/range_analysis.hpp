// Dynamic-range determination (the first stage of float-to-fixed-point
// conversion, Section II.B).
//
// Two methods, as in the ID.Fix framework the paper builds on:
//  * interval propagation of the declared input ranges through the DFG,
//    iterated to a fixed point (exact convergence for feed-forward kernels);
//  * simulation-based ranges (value hulls from the double simulator under
//    random stimulus, widened by a safety margin), for recursive kernels
//    whose interval iteration diverges (e.g. IIR feedback).
//
// `analyze_ranges` runs interval propagation first and falls back to
// simulation automatically when it fails to converge.
#pragma once

#include <vector>

#include "ir/kernel.hpp"
#include "support/interval.hpp"

namespace slpwlo {

enum class RangeMethod {
    Auto,        ///< interval, falling back to simulation on divergence
    Interval,    ///< interval propagation only; throws on divergence
    Simulation,  ///< simulation only
};

struct RangeOptions {
    RangeMethod method = RangeMethod::Auto;
    /// Maximum whole-kernel interval propagation passes before declaring
    /// divergence.
    int max_interval_passes = 64;
    /// Number of random stimulus runs for the simulation method.
    int simulation_runs = 4;
    uint64_t seed = 0x51D0;
    /// Multiplicative widening applied to simulated hulls (safety margin).
    double simulation_margin = 2.0;
};

struct RangeMap {
    /// Hull of values each variable may take, indexed by VarId.
    std::vector<Interval> var_ranges;
    /// Hull over all elements of each array, indexed by ArrayId.
    std::vector<Interval> array_ranges;
    /// Which method produced the result.
    RangeMethod method_used = RangeMethod::Interval;
};

RangeMap analyze_ranges(const Kernel& kernel, const RangeOptions& options = {});

}  // namespace slpwlo
