#include "fixpoint/iwl.hpp"

#include "support/dbmath.hpp"

namespace slpwlo {

FixedPointSpec determine_iwls(const Kernel& kernel, const RangeMap& ranges) {
    FixedPointSpec spec(kernel);
    for (const NodeRef node : spec.nodes()) {
        Interval range;
        bool is_param = false;
        if (node.kind == NodeRef::Kind::Var) {
            range = ranges.var_ranges.at(static_cast<size_t>(node.id));
        } else {
            range = ranges.array_ranges.at(static_cast<size_t>(node.id));
            is_param = kernel.array(ArrayId(node.id)).storage ==
                       StorageClass::Param;
        }
        int iwl = iwl_for_range(range);
        // Coefficients are compile-time constants: a designer picks the
        // format that represents them exactly, so avoid the saturating-top
        // convention when the largest coefficient sits on the boundary.
        if (is_param && !range.is_empty() && range.hi() == pow2(iwl - 1)) {
            iwl += 1;
        }
        spec.set_format(node, FixedFormat(iwl, 0));
    }
    return spec;
}

FixedPointSpec build_initial_spec(const Kernel& kernel,
                                  const RangeOptions& options) {
    return determine_iwls(kernel, analyze_ranges(kernel, options));
}

}  // namespace slpwlo
