#include "fixpoint/spec.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace slpwlo {

FixedPointSpec::FixedPointSpec(const Kernel& kernel) : kernel_(&kernel) {
    var_formats_.assign(kernel.vars().size(), FixedFormat(1, 0));
    array_formats_.assign(kernel.arrays().size(), FixedFormat(1, 0));

    // Enumerate nodes: defined variables in definition order, then arrays.
    std::vector<bool> defined(kernel.vars().size(), false);
    for (const BlockId block : kernel.blocks_in_order()) {
        for (const OpId op_id : kernel.block(block).ops) {
            const Op& op = kernel.op(op_id);
            // Loads resolve to their array node; their dest var node would
            // be redundant.
            if (op.kind == OpKind::Load) continue;
            if (op.dest.valid() && !defined[op.dest.index()]) {
                defined[op.dest.index()] = true;
                nodes_.push_back(NodeRef::of_var(op.dest));
            }
        }
    }
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        nodes_.push_back(NodeRef::of_array(ArrayId(static_cast<int32_t>(a))));
    }
}

const FixedFormat& FixedPointSpec::format(NodeRef node) const {
    SLPWLO_ASSERT(node.valid(), "invalid node");
    if (node.kind == NodeRef::Kind::Var) {
        return var_formats_.at(static_cast<size_t>(node.id));
    }
    return array_formats_.at(static_cast<size_t>(node.id));
}

const FixedFormat& FixedPointSpec::var_format(VarId v) const {
    return format(NodeRef::of_var(v));
}

const FixedFormat& FixedPointSpec::array_format(ArrayId a) const {
    return format(NodeRef::of_array(a));
}

void FixedPointSpec::set_format(NodeRef node, const FixedFormat& fmt) {
    SLPWLO_ASSERT(node.valid(), "invalid node");
    FixedFormat& slot = node.kind == NodeRef::Kind::Var
                            ? var_formats_.at(static_cast<size_t>(node.id))
                            : array_formats_.at(static_cast<size_t>(node.id));
    if (slot.iwl == fmt.iwl && slot.fwl == fmt.fwl) return;
    slot = fmt;
    journal_.push_back(node);
}

NodeRef FixedPointSpec::node_of(OpId op_id) const {
    const Op& op = kernel_->op(op_id);
    if (op.kind == OpKind::Load || op.kind == OpKind::Store) {
        return NodeRef::of_array(op.array);
    }
    SLPWLO_ASSERT(op.dest.valid(), "non-store op without destination");
    return NodeRef::of_var(op.dest);
}

const FixedFormat& FixedPointSpec::result_format(OpId op_id) const {
    return format(node_of(op_id));
}

void FixedPointSpec::set_iwl(NodeRef node, int iwl) {
    FixedFormat fmt = format(node);
    fmt.iwl = iwl;
    set_format(node, fmt);
}

void FixedPointSpec::set_wl(NodeRef node, int wl) {
    set_format(node, format(node).with_wl(wl));
}

FixedPointSpec::Checkpoint FixedPointSpec::checkpoint() {
    stack_.push_back(Snapshot{var_formats_, array_formats_});
    return stack_.size();
}

void FixedPointSpec::revert(Checkpoint cp) {
    SLPWLO_ASSERT(cp == stack_.size(), "checkpoints must unwind in LIFO order");
    const Snapshot& snap = stack_.back();
    // Journal every node the restore actually changes, so incremental
    // evaluators see reverted moves the same way they see applied ones.
    for (size_t v = 0; v < var_formats_.size(); ++v) {
        if (var_formats_[v].iwl != snap.var_formats[v].iwl ||
            var_formats_[v].fwl != snap.var_formats[v].fwl) {
            journal_.push_back(NodeRef::of_var(VarId(static_cast<int32_t>(v))));
        }
    }
    for (size_t a = 0; a < array_formats_.size(); ++a) {
        if (array_formats_[a].iwl != snap.array_formats[a].iwl ||
            array_formats_[a].fwl != snap.array_formats[a].fwl) {
            journal_.push_back(
                NodeRef::of_array(ArrayId(static_cast<int32_t>(a))));
        }
    }
    var_formats_ = std::move(stack_.back().var_formats);
    array_formats_ = std::move(stack_.back().array_formats);
    stack_.pop_back();
}

void FixedPointSpec::commit(Checkpoint cp) {
    SLPWLO_ASSERT(cp == stack_.size(), "checkpoints must unwind in LIFO order");
    stack_.pop_back();
}

std::string FixedPointSpec::str() const {
    std::ostringstream os;
    os << "spec(" << kernel_->name() << ", " << to_string(quant_mode_) << ")\n";
    for (const NodeRef node : nodes_) {
        if (node.kind == NodeRef::Kind::Var) {
            os << "  var " << kernel_->var(VarId(node.id)).name;
        } else {
            os << "  array " << kernel_->array(ArrayId(node.id)).name;
        }
        os << " : " << format(node).str() << "\n";
    }
    return os.str();
}

}  // namespace slpwlo
