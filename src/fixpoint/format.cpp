#include "fixpoint/format.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/dbmath.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {

double FixedFormat::step() const { return pow2(-fwl); }

double FixedFormat::min_value() const { return -pow2(iwl - 1); }

double FixedFormat::max_value() const { return pow2(iwl - 1) - step(); }

Interval FixedFormat::range() const {
    return Interval(min_value(), std::max(min_value(), max_value()));
}

FixedFormat FixedFormat::with_fwl_reduced_by(int amount) const {
    return FixedFormat(iwl + amount, fwl - amount);
}

FixedFormat FixedFormat::with_wl(int wl_total) const {
    return FixedFormat(iwl, wl_total - iwl);
}

std::string FixedFormat::str() const {
    std::ostringstream os;
    os << "<" << iwl << "," << fwl << ">";
    return os.str();
}

int iwl_for_range(const Interval& range) {
    if (range.is_empty()) return 1;
    // Negative IWLs are legitimate (binary point left of the sign bit,
    // e.g. Q-3.18 for a signal bounded by 1/16): small-magnitude nodes
    // such as low-order filter coefficients get maximal precision for
    // their word length, which is where the per-lane scaling
    // heterogeneity of Section III.C comes from.
    int iwl = std::numeric_limits<int>::min();
    if (range.hi() > 0.0) {
        // Need hi <= 2^(iwl-1), accepting equality (saturating convention).
        iwl = std::max(iwl, ceil_log2(range.hi()) + 1);
    }
    if (range.lo() < 0.0) {
        // -2^(iwl-1) is exactly representable, so equality is fine.
        iwl = std::max(iwl, ceil_log2(-range.lo()) + 1);
    }
    if (iwl == std::numeric_limits<int>::min()) return 1;  // the zero range
    return iwl;
}

}  // namespace slpwlo
