// IWL determination: fix the binary point of every node from its value
// range, choosing the minimum IWL that avoids overflow (Section II.B (i)).
#pragma once

#include "fixpoint/range_analysis.hpp"
#include "fixpoint/spec.hpp"

namespace slpwlo {

/// Build a FixedPointSpec for `kernel` with every node's IWL determined
/// from `ranges` and FWL initialized to zero (WLO sets word lengths).
FixedPointSpec determine_iwls(const Kernel& kernel, const RangeMap& ranges);

/// Convenience: range analysis + IWL determination in one call.
FixedPointSpec build_initial_spec(const Kernel& kernel,
                                  const RangeOptions& options = {});

}  // namespace slpwlo
