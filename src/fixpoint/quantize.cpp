#include "fixpoint/quantize.hpp"

#include <cmath>

#include "support/dbmath.hpp"

namespace slpwlo {

std::string to_string(QuantMode mode) {
    switch (mode) {
        case QuantMode::Truncate: return "truncate";
        case QuantMode::Round: return "round";
    }
    return "<invalid-mode>";
}

double quantize_value(double value, int fwl, QuantMode mode) {
    const double scale = pow2(fwl);
    switch (mode) {
        case QuantMode::Truncate:
            return std::floor(value * scale) / scale;
        case QuantMode::Round:
            return std::floor(value * scale + 0.5) / scale;
    }
    return value;
}

double quantize_saturate(double value, const FixedFormat& format,
                         QuantMode mode, bool* overflowed) {
    double q = quantize_value(value, format.fwl, mode);
    const double lo = format.min_value();
    const double hi = format.max_value();
    bool sat = false;
    if (q < lo) {
        q = lo;
        sat = true;
    } else if (q > hi) {
        q = hi;
        sat = true;
    }
    if (overflowed != nullptr) *overflowed = sat;
    return q;
}

NoiseStats quantization_stats(int fwl_out, int bits_dropped, QuantMode mode) {
    if (bits_dropped <= 0) return NoiseStats{};
    const double q = pow2(-fwl_out);
    // 2^-k and 2^-2k; saturate for large k to the continuous limit.
    const double k2 = bits_dropped >= 60 ? 0.0 : pow2(-bits_dropped);
    const double k4 = bits_dropped >= 30 ? 0.0 : pow2(-2 * bits_dropped);
    NoiseStats stats;
    stats.variance = q * q / 12.0 * (1.0 - k4);
    switch (mode) {
        case QuantMode::Truncate:
            stats.mean = -q / 2.0 * (1.0 - k2);
            break;
        case QuantMode::Round:
            stats.mean = q / 2.0 * k2;
            break;
    }
    return stats;
}

NoiseStats continuous_quantization_stats(int fwl_out, QuantMode mode) {
    return quantization_stats(fwl_out, 1000, mode);
}

}  // namespace slpwlo
