// FixedPointSpec: the fixed-point specification of a kernel.
//
// A *node* is anything that carries a fixed-point format: every scalar
// variable (user variables and expression temporaries — each arithmetic
// operation's result) and every array (storage format of its elements).
// This mirrors the paper's "each data and operation ... called nodes".
//
// Load results are not independent nodes: a load yields exactly the storage
// format of its array (a SIMD vector load cannot re-format lanes), so
// format queries on a load's destination resolve to the array node. All
// definitions of a multiply-assigned user variable share that variable's
// single node, as a C variable has one declared type.
//
// The spec supports nested checkpoints (save/revert/commit) because the
// WLO algorithms of Fig. 1 speculatively apply WL changes, evaluate the
// accuracy, and revert.
#pragma once

#include <string>
#include <vector>

#include "fixpoint/format.hpp"
#include "fixpoint/quantize.hpp"
#include "ir/kernel.hpp"

namespace slpwlo {

/// A format-carrying node: a scalar variable or an array.
struct NodeRef {
    enum class Kind { Var, Array };
    Kind kind = Kind::Var;
    int32_t id = -1;

    static NodeRef of_var(VarId v) { return NodeRef{Kind::Var, v.value}; }
    static NodeRef of_array(ArrayId a) { return NodeRef{Kind::Array, a.value}; }

    bool valid() const { return id >= 0; }
    friend bool operator==(const NodeRef&, const NodeRef&) = default;
};

class FixedPointSpec {
public:
    /// Creates a spec with all formats <iwl=1, fwl=0>; ranges and WLO fill
    /// in real values afterwards.
    explicit FixedPointSpec(const Kernel& kernel);

    const Kernel& kernel() const { return *kernel_; }

    QuantMode quant_mode() const { return quant_mode_; }
    void set_quant_mode(QuantMode mode) { quant_mode_ = mode; }

    // --- format access -------------------------------------------------------
    const FixedFormat& format(NodeRef node) const;
    const FixedFormat& var_format(VarId v) const;
    const FixedFormat& array_format(ArrayId a) const;

    void set_format(NodeRef node, const FixedFormat& format);

    /// Format of the value produced by `op`: its array's format for Load,
    /// the destination variable's node otherwise. Store has no result.
    const FixedFormat& result_format(OpId op) const;

    /// The node that carries the format of `op`'s result (array node for
    /// Load, dest-var node otherwise); for Store, the target array node.
    NodeRef node_of(OpId op) const;

    /// Set the iwl of a node, keeping its fwl.
    void set_iwl(NodeRef node, int iwl);

    /// Set the total word length of a node, keeping its iwl
    /// (fwl := wl - iwl). This is the WLO move.
    void set_wl(NodeRef node, int wl);

    /// All nodes of the kernel (vars that are defined by some op, plus all
    /// arrays), in a deterministic order.
    const std::vector<NodeRef>& nodes() const { return nodes_; }

    // --- change journal --------------------------------------------------------
    // Append-only log of nodes whose format actually changed (including
    // changes undone by revert, which re-appends the affected nodes).
    // Incremental evaluators keep a cursor into the journal and refresh the
    // cached contribution of every node logged since their last sync; a
    // node may appear multiple times, which is safe (refresh is idempotent).
    size_t journal_size() const { return journal_.size(); }
    NodeRef journal_entry(size_t i) const { return journal_[i]; }

    // --- checkpoints -----------------------------------------------------------
    /// Opaque checkpoint token; revert/commit must be called in LIFO order.
    using Checkpoint = size_t;

    Checkpoint checkpoint();
    void revert(Checkpoint cp);
    void commit(Checkpoint cp);
    size_t open_checkpoints() const { return stack_.size(); }

    std::string str() const;

private:
    struct Snapshot {
        std::vector<FixedFormat> var_formats;
        std::vector<FixedFormat> array_formats;
    };

    const Kernel* kernel_;
    std::vector<FixedFormat> var_formats_;
    std::vector<FixedFormat> array_formats_;
    std::vector<NodeRef> nodes_;
    std::vector<Snapshot> stack_;
    std::vector<NodeRef> journal_;
    QuantMode quant_mode_ = QuantMode::Truncate;
};

}  // namespace slpwlo
