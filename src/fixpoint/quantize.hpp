// Quantization: value rounding and the statistical error model.
//
// The analytical accuracy evaluator (src/accuracy) models every quantization
// point as an additive noise source whose mean and variance follow the
// classical uniform-quantization model (Widrow; as used by Menard et al.):
//
//   q = 2^-fwl_out, k = fwl_in - fwl_out bits discarded
//   truncation:  mean = -q/2 (1 - 2^-k),  var = q^2/12 (1 - 2^-2k)
//   round:       mean =  q/2 2^-k,        var = q^2/12 (1 - 2^-2k)
//
// k = infinity (quantizing a continuous-amplitude value, e.g. an input
// sample) gives the familiar mean -q/2 / 0 and variance q^2/12.
#pragma once

#include "fixpoint/format.hpp"

namespace slpwlo {

enum class QuantMode {
    Truncate,  ///< round toward -infinity (default; what the paper assumes)
    Round,     ///< round to nearest, half up
};

std::string to_string(QuantMode mode);

/// Quantize `value` to a multiple of 2^-fwl according to `mode`.
/// No saturation is applied here.
double quantize_value(double value, int fwl, QuantMode mode);

/// Quantize and saturate to the representable range of `format`.
/// If `overflowed` is non-null it is set when saturation occurred.
double quantize_saturate(double value, const FixedFormat& format,
                         QuantMode mode, bool* overflowed = nullptr);

/// First and second moments of the quantization error.
struct NoiseStats {
    double mean = 0.0;
    double variance = 0.0;

    /// Total error power: variance + mean^2.
    double power() const { return variance + mean * mean; }

    NoiseStats& operator+=(const NoiseStats& other) {
        mean += other.mean;
        variance += other.variance;
        return *this;
    }
};

/// Error statistics for dropping `bits_dropped` fractional bits down to
/// `fwl_out` resolution; bits_dropped < 0 means no quantization occurs
/// (returns zeros). Use `continuous_quantization_stats` when the source has
/// unbounded resolution.
NoiseStats quantization_stats(int fwl_out, int bits_dropped, QuantMode mode);

/// Error statistics of quantizing a continuous-amplitude value to fwl_out.
NoiseStats continuous_quantization_stats(int fwl_out, QuantMode mode);

}  // namespace slpwlo
